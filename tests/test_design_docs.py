"""Documentation consistency: the promises DESIGN.md / README make must
match the code (experiment registry, module map, dataset roster)."""

from __future__ import annotations

import pathlib

import pytest

ROOT = pathlib.Path(__file__).resolve().parent.parent


@pytest.fixture(scope="module")
def design_text():
    return (ROOT / "DESIGN.md").read_text()


@pytest.fixture(scope="module")
def readme_text():
    return (ROOT / "README.md").read_text()


class TestDesignDoc:
    def test_paper_check_is_recorded(self, design_text):
        assert "Paper-text check" in design_text
        assert "2205.14503" in design_text

    def test_every_registered_experiment_mentioned(self, design_text):
        # the per-experiment index must cover the paper artefacts
        for artefact in ("Table I", "Fig 3", "Fig 4", "Table IV", "Fig 5",
                         "Fig 6", "Fig 7", "Table V", "Fig 8", "Table VI",
                         "Table VII", "Fig 9"):
            assert artefact in design_text, artefact

    def test_substitution_table_present(self, design_text):
        for substitution in ("discrete-event simulation", "Dreyfus",
                             "HavoqGT", "stand-ins"):
            assert substitution in design_text, substitution

    def test_module_map_paths_exist(self, design_text):
        for pkg in ("repro.graph", "repro.runtime", "repro.core",
                    "repro.baselines", "repro.harness", "repro.mst",
                    "repro.seeds", "repro.shortest_paths"):
            assert pkg in design_text
            __import__(pkg)  # and it imports


class TestReadme:
    def test_quickstart_code_runs(self, readme_text):
        # extract the first python code block and execute it
        block = readme_text.split("```python")[1].split("```")[0]
        namespace: dict = {}
        exec(compile(block, "<README quickstart>", "exec"), namespace)

    def test_experiment_table_matches_registry(self, readme_text):
        from repro.harness.registry import EXPERIMENTS

        for exp_id in EXPERIMENTS:
            if exp_id.startswith("ablation"):
                continue  # grouped as `ablation-*` in the README
            assert f"`{exp_id}`" in readme_text, exp_id

    def test_example_scripts_exist(self, readme_text):
        for line in readme_text.splitlines():
            if line.startswith("| `") and line.strip().endswith("|") and ".py" in line:
                name = line.split("`")[1]
                assert (ROOT / "examples" / name).exists(), name


class TestExperimentsDoc:
    def test_covers_every_experiment(self):
        from repro.harness.registry import EXPERIMENTS

        text = (ROOT / "EXPERIMENTS.md").read_text()
        for exp_id in EXPERIMENTS:
            assert f"## {exp_id}:" in text, exp_id
