"""The chaos suite: deterministic fault injection end to end.

Everything here runs a *scripted* failure (:class:`repro.faults.FaultPlan`)
against the robustness machinery of PR 8 and checks the documented
contracts (``docs/robustness.md``):

* ``bsp-mp`` recovery preserves parity — kill a worker at **every**
  superstep in turn and the tree, converged arrays and every BSP
  counter stay bit-identical to the fault-free run;
* hung workers trip the heartbeat and recover the same way;
* a spent restart budget escalates to
  :class:`~repro.errors.WorkerCrashError` (the transient class the
  serve layer retries) with provenance attached;
* serve answers expired deadlines with a structured ``timeout`` error
  (never hangs), sheds over-queue load with ``retry_after_ms``, retries
  only worker-crash failures, drains gracefully, and survives clients
  whose connections drop mid-response;
* a corrupt disk-cache entry is quarantined (``.corrupt``), counted,
  and served as a plain miss.

Marked ``chaos``: the CI chaos job runs exactly this file with
``-m chaos``; the full tier-1 run includes it too.
"""

from __future__ import annotations

import json
import multiprocessing
import socket
import threading
import time

import numpy as np
import pytest

from repro.core.config import SolverConfig
from repro.core.solver import DistributedSteinerSolver
from repro.core.voronoi_visitor import VoronoiProgram
from repro.errors import WorkerCrashError
from repro.faults import ENV_VAR, FaultAction, FaultPlan, env_plan
from repro.graph.generators import grid_graph
from repro.graph.weights import assign_uniform_weights
from repro.runtime.engine_mp import BSPMultiprocessEngine, fork_available
from repro.runtime.partition import block_partition
from repro.serve import (
    QueueFull,
    RequestTimeout,
    ServiceDraining,
    SolveCache,
    SolverService,
    make_tcp_server,
)
from repro.serve.cache import CacheStats
from tests.conftest import component_seeds, make_connected_graph

pytestmark = pytest.mark.chaos

needs_fork = pytest.mark.skipif(
    not fork_available(), reason="platform lacks the fork start method"
)

#: the full per-phase accounting surface the parity contract covers
_COUNTERS = (
    "n_visits",
    "n_messages_local",
    "n_messages_remote",
    "bytes_sent",
    "peak_queue_total",
)


def stat_tuple(stats):
    return tuple(getattr(stats, attr) for attr in _COUNTERS) + (
        stats.sim_time,
        tuple(stats.busy_time),
    )


def run_voronoi(engine, partition, seeds):
    prog = VoronoiProgram(partition)
    try:
        stats = engine.run_phase(
            "Voronoi Cell", prog, list(prog.initial_messages(seeds))
        )
    finally:
        engine.close()
    return prog, stats


# --------------------------------------------------------------------- #
# the plan itself
# --------------------------------------------------------------------- #
class TestFaultPlan:
    def test_seeded_is_deterministic(self):
        a = FaultPlan.seeded(42, n_faults=5, kinds=("kill_worker", "delay_worker"))
        b = FaultPlan.seeded(42, n_faults=5, kinds=("kill_worker", "delay_worker"))
        assert a.actions == b.actions
        assert FaultPlan.seeded(43).actions != a.actions

    def test_actions_fire_once_and_reset(self):
        plan = FaultPlan.kill(worker=1, superstep=3)
        assert len(plan.take("kill_worker", superstep=3, worker=1)) == 1
        assert plan.take("kill_worker", superstep=3, worker=1) == []
        assert plan.pending() == 0
        assert [a.kind for a in plan.fired()] == ["kill_worker"]
        plan.reset()
        assert plan.pending() == 1

    def test_wildcard_and_filter_semantics(self):
        plan = FaultPlan([FaultAction("kill_worker")])  # matches anywhere
        assert plan.take("kill_worker", phase="x", superstep=9, worker=5)
        plan = FaultPlan.kill(worker=0, superstep=2, phase="Voronoi Cell")
        assert plan.take("kill_worker", phase="Tree Edges", superstep=2) == []
        assert plan.take("kill_worker", phase="Voronoi Cell", superstep=2)

    def test_json_round_trip(self):
        plan = FaultPlan(
            [
                FaultAction("kill_worker", worker=1, superstep=4),
                FaultAction("delay_worker", worker=0, superstep=2, delay_s=0.5),
                FaultAction("corrupt_cache"),
            ]
        )
        assert FaultPlan.from_json(plan.to_json()).actions == plan.actions

    def test_validation(self):
        with pytest.raises(ValueError, match="unknown fault kind"):
            FaultAction("explode")
        with pytest.raises(ValueError, match="delay_s"):
            FaultAction("delay_worker", delay_s=-1.0)
        with pytest.raises(ValueError, match="list"):
            FaultPlan.from_json("42")

    def test_env_plan_parsed_once_and_shared(self, monkeypatch, tmp_path):
        text = FaultPlan.kill(worker=0, superstep=2).to_json()
        monkeypatch.setenv(ENV_VAR, text)
        first = env_plan()
        assert first is env_plan()  # same instance: shared consumption
        assert len(first) == 1
        path = tmp_path / "plan.json"
        path.write_text(text)
        monkeypatch.setenv(ENV_VAR, f"@{path}")
        from_file = env_plan()
        assert from_file is not first
        assert from_file.actions == first.actions
        monkeypatch.delenv(ENV_VAR)
        assert env_plan() is None

    def test_env_plan_misconfig_is_loud(self, monkeypatch):
        monkeypatch.setenv(ENV_VAR, "{not json")
        with pytest.raises(ValueError):
            env_plan()


# --------------------------------------------------------------------- #
# bsp-mp: recovery preserves parity
# --------------------------------------------------------------------- #
@needs_fork
class TestKillRecoveryParity:
    def test_kill_at_every_superstep_bit_identical(self):
        """The acceptance anchor: kill each worker at each superstep
        index in turn; every run recovers and reproduces the fault-free
        converged arrays AND every BSP counter bit-identically."""
        graph = make_connected_graph(30, 80, seed=11)
        seeds = np.asarray(component_seeds(graph, 4, seed=5))
        part = block_partition(graph, 6)
        ref_engine = BSPMultiprocessEngine(part, workers=2)
        ref_prog, ref_stats = run_voronoi(ref_engine, part, seeds)
        n_steps = ref_engine.n_supersteps
        assert n_steps >= 2

        for worker in (0, 1):
            for superstep in range(1, n_steps + 1):
                engine = BSPMultiprocessEngine(
                    part,
                    workers=2,
                    checkpoint_interval=3,
                    fault_plan=FaultPlan.kill(worker=worker, superstep=superstep),
                )
                prog, stats = run_voronoi(engine, part, seeds)
                label = f"kill worker {worker} @ superstep {superstep}"
                assert engine.restarts == 1, label
                assert engine.replayed_supersteps >= 1, label
                assert engine.recovery_wall_s > 0, label
                assert np.array_equal(ref_prog.src, prog.src), label
                assert np.array_equal(ref_prog.dist, prog.dist), label
                assert stat_tuple(stats) == stat_tuple(ref_stats), label

    def test_replay_bounded_by_checkpoint_interval(self):
        """Recovery re-drives at most ``checkpoint_interval`` supersteps
        (the logged tail plus the current one)."""
        graph = make_connected_graph(30, 80, seed=11)
        seeds = np.asarray(component_seeds(graph, 4, seed=5))
        part = block_partition(graph, 6)
        engine = BSPMultiprocessEngine(
            part,
            workers=2,
            checkpoint_interval=2,
            fault_plan=FaultPlan.kill(worker=0, superstep=5),
        )
        run_voronoi(engine, part, seeds)
        assert 1 <= engine.replayed_supersteps <= 2

    def test_double_kill_recovers_within_budget(self):
        graph = make_connected_graph(30, 80, seed=11)
        seeds = np.asarray(component_seeds(graph, 4, seed=5))
        part = block_partition(graph, 6)
        ref_prog, ref_stats = run_voronoi(
            BSPMultiprocessEngine(part, workers=2), part, seeds
        )
        plan = FaultPlan(
            [
                FaultAction("kill_worker", worker=1, superstep=2),
                FaultAction("kill_worker", worker=1, superstep=4),
            ]
        )
        engine = BSPMultiprocessEngine(
            part, workers=2, checkpoint_interval=3, max_restarts=2, fault_plan=plan
        )
        prog, stats = run_voronoi(engine, part, seeds)
        assert engine.restarts == 2
        assert np.array_equal(ref_prog.dist, prog.dist)
        assert stat_tuple(stats) == stat_tuple(ref_stats)

    def test_hung_worker_trips_heartbeat_and_recovers(self):
        graph = make_connected_graph(30, 80, seed=11)
        seeds = np.asarray(component_seeds(graph, 4, seed=5))
        part = block_partition(graph, 6)
        ref_prog, ref_stats = run_voronoi(
            BSPMultiprocessEngine(part, workers=2), part, seeds
        )
        plan = FaultPlan(
            [FaultAction("delay_worker", worker=0, superstep=2, delay_s=5.0)]
        )
        engine = BSPMultiprocessEngine(
            part, workers=2, worker_timeout_s=0.3, fault_plan=plan
        )
        prog, stats = run_voronoi(engine, part, seeds)
        assert engine.restarts == 1
        assert np.array_equal(ref_prog.dist, prog.dist)
        assert stat_tuple(stats) == stat_tuple(ref_stats)

    def test_spent_budget_escalates_with_provenance(self):
        graph = make_connected_graph(30, 80, seed=11)
        seeds = np.asarray(component_seeds(graph, 4, seed=5))
        part = block_partition(graph, 6)
        engine = BSPMultiprocessEngine(
            part,
            workers=2,
            max_restarts=0,
            fault_plan=FaultPlan.kill(worker=0, superstep=2),
        )
        with pytest.raises(WorkerCrashError, match="restart budget") as excinfo:
            run_voronoi(engine, part, seeds)
        assert excinfo.value.exitcode == 17  # the injected-crash marker
        assert excinfo.value.restarts == 0
        assert not any(
            p.name.startswith("bsp-mp-") for p in multiprocessing.active_children()
        )

    def test_solver_tree_identical_with_recovery_provenance(self):
        """Full solve through the public config surface: the tree is
        bit-identical and ``provenance["fault_recovery"]`` records the
        restart."""
        graph = make_connected_graph(30, 80, seed=11)
        seeds = component_seeds(graph, 4, seed=9)
        base = SolverConfig(n_ranks=6, engine="bsp-mp", workers=2)
        ref = DistributedSteinerSolver(graph, base).solve(seeds)
        assert "fault_recovery" not in ref.provenance
        faulty = SolverConfig(
            n_ranks=6,
            engine="bsp-mp",
            workers=2,
            checkpoint_interval=2,
            fault_plan=FaultPlan.kill(worker=1, superstep=2),
        )
        res = DistributedSteinerSolver(graph, faulty).solve(seeds)
        assert np.array_equal(ref.edges, res.edges)
        assert ref.total_distance == res.total_distance
        for p_ref, p_res in zip(ref.phases, res.phases):
            assert stat_tuple(p_ref) == stat_tuple(p_res), p_ref.name
        recovery = res.provenance["fault_recovery"]
        assert recovery["restarts"] == 1
        assert recovery["replayed_supersteps"] >= 1
        assert recovery["recovery_wall_s"] > 0


# --------------------------------------------------------------------- #
# bsp-mp: shm transport and coalesced groups under fire
# --------------------------------------------------------------------- #
@needs_fork
class TestShmAndCoalescingChaos:
    """PR-10 extensions of the recovery-preserves-parity contract: the
    kill-at-every-superstep sweep holds on the shared-memory data plane
    (descriptors into respawned rings, union checkpoint restore) and
    across coalesced superstep groups (a crash mid-group truncates the
    group at the fault and replays to identical logical counters)."""

    GROUPED = dict(coalesce_threshold=4096, coalesce_max=4)

    def _chain(self):
        # a long path: tiny inboxes every superstep, so coalescing is
        # engaged for essentially the whole phase
        graph = grid_graph(1, 28)
        part = block_partition(graph, 6)
        seeds = np.asarray([0, 27])
        return part, seeds

    @pytest.mark.parametrize("shm", [True, False], ids=["shm", "pickle"])
    def test_kill_sweep_grouped_supersteps(self, shm):
        """Kill each worker at every superstep of a heavily coalesced
        run, on both transports: bit-identical arrays and counters."""
        from repro.runtime.shm_transport import SHM_AVAILABLE

        if shm and not SHM_AVAILABLE:
            pytest.skip("multiprocessing.shared_memory unavailable")
        part, seeds = self._chain()
        ref_engine = BSPMultiprocessEngine(
            part, workers=2, shm_transport=shm, **self.GROUPED
        )
        ref_prog, ref_stats = run_voronoi(ref_engine, part, seeds)
        n_steps = ref_engine.n_supersteps
        assert ref_engine.coalesced_supersteps > 0  # groups actually ran

        for worker in (0, 1):
            for superstep in range(1, n_steps + 1):
                engine = BSPMultiprocessEngine(
                    part,
                    workers=2,
                    shm_transport=shm,
                    checkpoint_interval=3,
                    fault_plan=FaultPlan.kill(worker=worker, superstep=superstep),
                    **self.GROUPED,
                )
                prog, stats = run_voronoi(engine, part, seeds)
                label = f"kill w{worker} @ s{superstep} shm={shm}"
                assert engine.restarts == 1, label
                assert engine.n_supersteps == n_steps, label
                assert np.array_equal(ref_prog.src, prog.src), label
                assert np.array_equal(ref_prog.dist, prog.dist), label
                assert stat_tuple(stats) == stat_tuple(ref_stats), label

    def test_crash_mid_group_replays_to_identical_counters(self):
        """The coalescing × checkpoint interaction: with groups of up to
        8 supersteps and a checkpoint every 8, a kill landing mid-group
        truncates the group at the fault, recovers from the checkpoint
        and replays — logical counters and provenance superstep count
        stay bit-identical to the fault-free grouped run."""
        part, seeds = self._chain()
        ref_engine = BSPMultiprocessEngine(
            part, workers=2, coalesce_threshold=4096, coalesce_max=8
        )
        ref_prog, ref_stats = run_voronoi(ref_engine, part, seeds)
        engine = BSPMultiprocessEngine(
            part,
            workers=2,
            coalesce_threshold=4096,
            coalesce_max=8,
            checkpoint_interval=8,
            fault_plan=FaultPlan.kill(worker=1, superstep=5),
        )
        prog, stats = run_voronoi(engine, part, seeds)
        assert engine.restarts == 1
        assert 1 <= engine.replayed_supersteps <= 8
        assert engine.coalesced_supersteps > 0
        assert engine.n_supersteps == ref_engine.n_supersteps
        assert np.array_equal(ref_prog.dist, prog.dist)
        assert stat_tuple(stats) == stat_tuple(ref_stats)

    def test_groups_never_straddle_checkpoints(self):
        """The replay bound survives coalescing: a group is capped at
        the next checkpoint boundary, so recovery still re-drives at
        most ``checkpoint_interval`` supersteps."""
        part, seeds = self._chain()
        engine = BSPMultiprocessEngine(
            part,
            workers=2,
            coalesce_threshold=4096,
            coalesce_max=8,
            checkpoint_interval=2,
            fault_plan=FaultPlan.kill(worker=0, superstep=5),
        )
        run_voronoi(engine, part, seeds)
        assert engine.restarts == 1
        assert 1 <= engine.replayed_supersteps <= 2

    def test_hung_worker_mid_group_recovers(self):
        """A delay fault inside a would-be group trips the heartbeat;
        the group is truncated at the fault and recovery preserves
        parity, same as the barriered path."""
        part, seeds = self._chain()
        ref_prog, ref_stats = run_voronoi(
            BSPMultiprocessEngine(part, workers=2, **self.GROUPED), part, seeds
        )
        plan = FaultPlan(
            [FaultAction("delay_worker", worker=0, superstep=3, delay_s=5.0)]
        )
        engine = BSPMultiprocessEngine(
            part,
            workers=2,
            worker_timeout_s=0.3,
            fault_plan=plan,
            **self.GROUPED,
        )
        prog, stats = run_voronoi(engine, part, seeds)
        assert engine.restarts == 1
        assert np.array_equal(ref_prog.dist, prog.dist)
        assert stat_tuple(stats) == stat_tuple(ref_stats)

    def test_solver_provenance_with_coalesced_recovery(self):
        """Full-solve surface: recovery inside coalesced groups records
        both ``fault_recovery`` and ``coalesced_supersteps`` while the
        tree stays bit-identical."""
        graph = grid_graph(1, 28)
        seeds = [0, 27]
        base = SolverConfig(
            n_ranks=6, engine="bsp-mp", workers=2,
            coalesce_threshold=4096, coalesce_max=8,
        )
        ref = DistributedSteinerSolver(graph, base).solve(seeds)
        assert ref.provenance["coalesced_supersteps"] > 0
        faulty = SolverConfig(
            n_ranks=6,
            engine="bsp-mp",
            workers=2,
            coalesce_threshold=4096,
            coalesce_max=8,
            checkpoint_interval=4,
            fault_plan=FaultPlan.kill(worker=1, superstep=3),
        )
        res = DistributedSteinerSolver(graph, faulty).solve(seeds)
        assert np.array_equal(ref.edges, res.edges)
        assert res.provenance["fault_recovery"]["restarts"] == 1
        assert res.provenance["coalesced_supersteps"] > 0
        for p_ref, p_res in zip(ref.phases, res.phases):
            assert stat_tuple(p_ref) == stat_tuple(p_res), p_ref.name


# --------------------------------------------------------------------- #
# serve: deadlines, shedding, retry, drain, dropped clients
# --------------------------------------------------------------------- #
class _BlockingCache:
    """Duck-typed cache whose lookups block on a gate until released —
    pins the batching worker mid-batch so admission-control and
    mid-batch-deadline tests are deterministic, not timing-dependent."""

    def __init__(self):
        self.gate = threading.Event()
        self.stats = CacheStats()

    def peek_solution(self, key):
        self.gate.wait(30)
        return None

    def get_solution(self, key):
        return None

    def put_solution(self, key, result):
        pass

    def get_diagram(self, key):
        return None

    def put_diagram(self, key, diagram):
        pass


@pytest.fixture
def graph():
    return assign_uniform_weights(grid_graph(10, 10), (1, 9), seed=13)


def make_service(graph, **kwargs):
    kwargs.setdefault("batch_window_s", 0.01)
    svc = SolverService(**kwargs)
    svc.add_graph("g", graph)
    return svc


def tcp_fixture(svc):
    server = make_tcp_server(svc)
    port = server.server_address[1]
    thread = threading.Thread(
        target=server.serve_forever, kwargs={"poll_interval": 0.05}, daemon=True
    )
    thread.start()
    return server, port


def tcp_chat(port, lines, n_responses, timeout=30):
    """Send ``lines``, read ``n_responses`` JSON replies (bounded wait)."""
    with socket.create_connection(("127.0.0.1", port), timeout=timeout) as s:
        f = s.makefile("rw", encoding="utf-8", newline="\n")
        for line in lines:
            f.write(line + "\n")
        f.flush()
        return [json.loads(f.readline()) for _ in range(n_responses)]


class TestDeadlines:
    def test_in_queue_expiry_structured_timeout(self, graph):
        svc = make_service(graph, batch_window_s=0.3)
        pending = svc.submit(
            {"id": "d", "graph": "g", "seeds": [0, 9, 90], "deadline_ms": 1}
        )
        with pytest.raises(RequestTimeout, match="deadline"):
            pending.wait(30)
        svc.close()
        assert svc.counters.timeouts == 1
        assert svc.counters.responses == 0

    def test_mid_batch_expiry_converts_late_result(self, graph):
        """The budget runs out while the batch executes: the late result
        is still answered as a structured timeout."""
        cache = _BlockingCache()
        svc = make_service(graph, cache=cache, batch_window_s=0)
        pending = svc.submit(
            {"id": "m", "graph": "g", "seeds": [0, 9, 90], "deadline_ms": 30}
        )
        time.sleep(0.1)  # let the deadline lapse while the worker is pinned
        cache.gate.set()
        with pytest.raises(RequestTimeout):
            pending.wait(30)
        svc.close()
        assert svc.counters.timeouts == 1

    def test_deadline_expiry_over_tcp_never_hangs(self, graph):
        svc = make_service(graph, batch_window_s=0.3)
        server, port = tcp_fixture(svc)
        try:
            (reply,) = tcp_chat(
                port,
                [
                    json.dumps(
                        {
                            "id": "t",
                            "graph": "g",
                            "seeds": [0, 9, 90],
                            "deadline_ms": 1,
                        }
                    )
                ],
                1,
            )
        finally:
            server.shutdown()
            server.server_close()
            svc.close()
        assert reply["ok"] is False
        assert reply["error"]["code"] == "timeout"
        assert reply["error"]["type"] == "RequestTimeout"

    def test_no_deadline_is_unbounded(self, graph):
        svc = make_service(graph, batch_window_s=0)
        res = svc.solve("g", [0, 9, 90])
        svc.close()
        assert res.n_edges >= 2
        assert svc.counters.timeouts == 0


class TestShedding:
    def _pin_worker(self, svc):
        """Admit one request and wait until the batching worker holds it
        (queue empty, worker blocked in the cache gate)."""
        first = svc.submit({"id": "p0", "graph": "g", "seeds": [0, 9, 90]})
        deadline = time.monotonic() + 10
        while svc.stats()["queue_depth"] > 0:
            assert time.monotonic() < deadline, "worker never picked up p0"
            time.sleep(0.005)
        return first

    def test_queue_bound_sheds_with_retry_hint(self, graph):
        cache = _BlockingCache()
        svc = make_service(
            graph, cache=cache, batch_window_s=0.05, max_batch=1, max_queue_depth=2
        )
        first = self._pin_worker(svc)
        queued = [
            svc.submit({"id": f"q{i}", "graph": "g", "seeds": [0, 9, 90 + i]})
            for i in range(2)
        ]
        with pytest.raises(QueueFull, match="full") as excinfo:
            svc.submit({"id": "shed", "graph": "g", "seeds": [0, 9, 95]})
        assert excinfo.value.retry_after_ms >= 1
        assert svc.counters.shed == 1
        cache.gate.set()
        assert first.wait(30).n_edges >= 2
        for p in queued:
            p.wait(30)
        svc.close()

    def test_shed_over_tcp_structured_error(self, graph):
        cache = _BlockingCache()
        svc = make_service(
            graph, cache=cache, batch_window_s=0.05, max_batch=1, max_queue_depth=2
        )
        server, port = tcp_fixture(svc)
        try:
            first = self._pin_worker(svc)
            with socket.create_connection(("127.0.0.1", port), timeout=30) as s:
                f = s.makefile("rw", encoding="utf-8", newline="\n")
                for i in range(3):
                    f.write(
                        json.dumps(
                            {"id": f"c{i}", "graph": "g", "seeds": [0, 9, 90 + i]}
                        )
                        + "\n"
                    )
                f.flush()
                # the shed error is written synchronously, before the
                # pinned worker answers anything else
                shed = json.loads(f.readline())
                assert shed["ok"] is False
                assert shed["error"]["code"] == "shed"
                assert shed["error"]["retry_after_ms"] >= 1
                cache.gate.set()
                served = [json.loads(f.readline()) for _ in range(2)]
                assert all(r["ok"] for r in served)
            first.wait(30)
        finally:
            server.shutdown()
            server.server_close()
            svc.close()

    def test_unbounded_by_default(self, graph):
        svc = make_service(graph)
        assert svc.max_queue_depth is None
        pendings = [
            svc.submit({"id": f"u{i}", "graph": "g", "seeds": [0, 9, 90]})
            for i in range(32)
        ]
        for p in pendings:
            p.wait(60)
        svc.close()
        assert svc.counters.shed == 0


class _FlakySolver:
    """Wraps a real solver; the first ``failures`` solves raise the
    transient worker-crash class."""

    def __init__(self, real, failures, error_cls=WorkerCrashError):
        self.real = real
        self.failures = failures
        self.error_cls = error_cls
        self.attempts = 0

    def solution_key(self, seeds):
        return self.real.solution_key(seeds)

    def solve(self, seeds, diagram=None):
        self.attempts += 1
        if self.attempts <= self.failures:
            if self.error_cls is WorkerCrashError:
                raise WorkerCrashError(
                    "injected transient crash", restarts=3, exitcode=17
                )
            raise self.error_cls("injected deterministic failure")
        return self.real.solve(seeds, diagram=diagram)


class TestTransientRetry:
    def _flaky_service(self, graph, failures, error_cls=WorkerCrashError):
        svc = make_service(
            graph, batch_window_s=0, transient_retries=2, retry_backoff_s=0
        )
        session = svc._sessions["g"]
        real_solver_for = session.solver_for
        flaky: dict[tuple, _FlakySolver] = {}

        def solver_for(config):
            key = config.fingerprint()
            if key not in flaky:
                flaky[key] = _FlakySolver(
                    real_solver_for(config), failures, error_cls
                )
            return flaky[key]

        session.solver_for = solver_for
        return svc, flaky

    def test_worker_crash_retried_until_success(self, graph):
        svc, flaky = self._flaky_service(graph, failures=2)
        res = svc.solve("g", [0, 9, 90])
        svc.close()
        assert res.n_edges >= 2
        assert svc.counters.retries == 2
        assert next(iter(flaky.values())).attempts == 3

    def test_worker_crash_budget_exhausted_propagates(self, graph):
        svc, _ = self._flaky_service(graph, failures=10)
        with pytest.raises(WorkerCrashError):
            svc.solve("g", [0, 9, 90])
        svc.close()
        assert svc.counters.retries == 2  # transient_retries, then give up

    def test_deterministic_errors_never_retried(self, graph):
        svc, flaky = self._flaky_service(graph, failures=10, error_cls=ValueError)
        with pytest.raises(ValueError, match="deterministic"):
            svc.solve("g", [0, 9, 90])
        svc.close()
        assert svc.counters.retries == 0
        assert next(iter(flaky.values())).attempts == 1


class TestDrainAndHealth:
    def test_drain_stops_admission_in_process(self, graph):
        svc = make_service(graph, batch_window_s=0)
        svc.solve("g", [0, 9, 90])
        assert svc.health()["status"] == "ok"
        assert svc.drain(timeout=30) is True
        assert svc.draining
        assert svc.health()["status"] == "draining"
        with pytest.raises(ServiceDraining, match="draining"):
            svc.submit({"id": "late", "graph": "g", "seeds": [0, 9]})
        svc.close()
        assert svc.health()["status"] == "closed"

    def test_drain_then_shutdown_over_tcp(self, graph):
        svc = make_service(graph, batch_window_s=0.01)
        server, port = tcp_fixture(svc)
        solve = json.dumps({"id": "s", "graph": "g", "seeds": [0, 9, 90]})
        replies = tcp_chat(
            port,
            [
                solve,
                json.dumps({"id": "h1", "op": "health"}),
                json.dumps({"id": "d", "op": "drain"}),
                solve.replace('"s"', '"late"'),
                json.dumps({"id": "h2", "op": "health"}),
                json.dumps({"id": "bye", "op": "shutdown"}),
            ],
            6,
        )
        server.server_close()
        svc.close()
        by_id = {r["id"]: r for r in replies}
        assert by_id["s"]["ok"] is True
        assert by_id["h1"]["health"]["status"] == "ok"
        assert by_id["d"]["drained"] is True
        assert by_id["late"]["ok"] is False
        assert by_id["late"]["error"]["code"] == "draining"
        assert by_id["h2"]["health"]["status"] == "draining"
        assert by_id["bye"]["shutting_down"] is True

    def test_drain_timeout_reports_inflight_work(self, graph):
        cache = _BlockingCache()
        svc = make_service(graph, cache=cache, batch_window_s=0)
        pending = svc.submit({"id": "w", "graph": "g", "seeds": [0, 9, 90]})
        assert svc.drain(timeout=0.05) is False  # worker still pinned
        cache.gate.set()
        pending.wait(30)
        assert svc.drain(timeout=30) is True
        svc.close()


class TestDroppedConnections:
    def test_client_drop_mid_response_leaves_service_alive(self, graph):
        plan = FaultPlan([FaultAction("drop_connection")])
        svc = SolverService(
            config=SolverConfig(voronoi_backend="delta-numpy", fault_plan=plan),
            batch_window_s=0.01,
        )
        svc.add_graph("g", graph)
        assert svc.fault_plan is plan
        server, port = tcp_fixture(svc)
        try:
            with socket.create_connection(("127.0.0.1", port), timeout=30) as s:
                f = s.makefile("rw", encoding="utf-8", newline="\n")
                f.write(
                    json.dumps({"id": "x", "graph": "g", "seeds": [0, 9, 90]}) + "\n"
                )
                f.flush()
                # the injected fault severs the socket instead of writing
                assert f.readline() == ""
            assert plan.pending() == 0
            # the service and its batching worker survived: a fresh
            # client is served normally
            (pong,) = tcp_chat(port, [json.dumps({"id": "p", "op": "ping"})], 1)
            assert pong["pong"] is True
            (served,) = tcp_chat(
                port,
                [json.dumps({"id": "y", "graph": "g", "seeds": [0, 9, 90]})],
                1,
            )
            assert served["ok"] is True
        finally:
            server.shutdown()
            server.server_close()
            svc.close()
        # the dropped request WAS solved; only its write was severed
        assert svc.counters.responses == 2


# --------------------------------------------------------------------- #
# cache corruption: quarantine and recovery
# --------------------------------------------------------------------- #
class TestCorruptCacheRecovery:
    def test_corrupt_entry_quarantined_and_recomputed(self, graph, tmp_path):
        seeds = [0, 9, 90]
        plan = FaultPlan([FaultAction("corrupt_cache")])
        first = SolverService(
            cache=SolveCache(disk_dir=tmp_path, fault_plan=plan), batch_window_s=0
        )
        first.add_graph("g", graph)
        r1 = first.solve("g", seeds)
        first.close()
        assert plan.pending() == 0  # the torn write happened

        # a restarted server must survive the corrupt entry: quarantine,
        # count, recompute — and still answer correctly
        fresh = SolveCache(disk_dir=tmp_path)
        second = SolverService(cache=fresh, batch_window_s=0)
        second.add_graph("g", graph)
        r2 = second.solve("g", seeds)
        second.close()
        assert r2.provenance["cache_hit"] is False
        assert fresh.stats.corrupt >= 1
        quarantined = list(tmp_path.glob("*.corrupt"))
        assert len(quarantined) == 1
        assert np.array_equal(r1.edges, r2.edges)
        assert r1.total_distance == r2.total_distance

        # the recompute rewrote a healthy entry: a third restart hits it
        third = SolverService(cache=SolveCache(disk_dir=tmp_path), batch_window_s=0)
        third.add_graph("g", graph)
        r3 = third.solve("g", seeds)
        third.close()
        assert r3.provenance["cache_hit"] is True
        assert np.array_equal(r2.edges, r3.edges)

    def test_direct_quarantine_of_garbage_file(self, tmp_path):
        cache = SolveCache(disk_dir=tmp_path)
        key = ("h", frozenset({1, 2}), "fp")
        path = cache._disk_path(key)
        path.write_bytes(b"\x80\x04 definitely not a pickle")
        assert cache.get_solution(key) is None
        assert cache.stats.corrupt == 1
        assert not path.exists()
        assert path.with_suffix(".pkl.corrupt").exists()
        # quarantined files are never re-read: next lookup is a plain miss
        assert cache.get_solution(key) is None
        assert cache.stats.corrupt == 1
