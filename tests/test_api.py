"""The ``repro.api`` facade: solve(), Session, configuration
fingerprints and the kwarg-drift deprecation shims.

The hypothesis blocks pin the ``SolverConfig.fingerprint`` contract the
serve cache keys depend on: invariant under field ordering, sensitive
to every behaviour-affecting field.
"""

from __future__ import annotations

import numpy as np
import pytest
from hypothesis import HealthCheck, given, settings
from hypothesis import strategies as st

import repro.api as api
from repro.api import Session, SolverConfig, solve
from repro.core.config import CONFIG_FIELD_ALIASES
from repro.core.solver import distributed_steiner_tree

from tests.conftest import component_seeds

FAST = settings(
    max_examples=40,
    deadline=None,
    suppress_health_check=[HealthCheck.too_slow],
)


class TestSolveFacade:
    def test_matches_core_entry_point(self, random_graph):
        seeds = component_seeds(random_graph, 5, seed=3)
        via_api = solve(random_graph, seeds, n_ranks=4)
        via_core = distributed_steiner_tree(random_graph, seeds, n_ranks=4)
        assert np.array_equal(via_api.edges, via_core.edges)
        assert via_api.total_distance == via_core.total_distance

    def test_dataset_name_accepted(self):
        res = solve(
            "CTS", [0, 1, 2, 3], voronoi_backend="delta-numpy", n_ranks=4
        )
        assert res.total_distance > 0
        assert res.provenance["backend"] == "delta-numpy"

    def test_config_and_kwargs_mutually_exclusive(self, random_graph):
        with pytest.raises(TypeError, match="not both"):
            solve(
                random_graph, [0, 1], config=SolverConfig(), n_ranks=4
            )

    def test_deprecated_alias_kwargs_warn(self, random_graph):
        seeds = component_seeds(random_graph, 3, seed=4)
        with pytest.warns(DeprecationWarning, match="ranks"):
            res = solve(random_graph, seeds, ranks=4)
        assert res.total_distance == solve(random_graph, seeds, n_ranks=4).total_distance

    def test_unknown_kwarg_rejected(self, random_graph):
        with pytest.raises(TypeError, match="nope"):
            solve(random_graph, [0, 1], nope=3)

    def test_exports(self):
        for name in api.__all__:
            assert hasattr(api, name)


class TestSession:
    def test_many_solves_reuse_state(self, random_graph):
        with Session(random_graph, n_ranks=4) as session:
            a = session.solve(component_seeds(random_graph, 4, seed=5))
            b = session.solve(component_seeds(random_graph, 3, seed=6))
            assert len(session._solvers) == 1  # one fingerprint, one solver
            c = session.solve(
                component_seeds(random_graph, 4, seed=5), n_ranks=8
            )
            assert len(session._solvers) == 2
        assert a.total_distance > 0 and b.total_distance > 0
        assert np.array_equal(a.edges, c.edges)  # ranks don't change the tree

    def test_solve_matches_oneshot(self, random_graph):
        seeds = component_seeds(random_graph, 5, seed=7)
        with Session(random_graph, voronoi_backend="delta-numpy") as s:
            warm = s.solve(seeds)
        solo = solve(random_graph, seeds, voronoi_backend="delta-numpy")
        assert np.array_equal(warm.edges, solo.edges)

    def test_closed_session_rejects_solves(self, random_graph):
        session = Session(random_graph)
        session.close()
        assert session.closed
        with pytest.raises(RuntimeError, match="closed"):
            session.solve([0, 1])
        session.close()  # idempotent

    def test_override_alias_warns(self, random_graph):
        seeds = component_seeds(random_graph, 3, seed=8)
        with Session(random_graph) as session:
            with pytest.warns(DeprecationWarning, match="queue"):
                res = session.solve(seeds, queue="fifo")
        assert res.total_distance > 0

    def test_session_cache_hits(self, random_graph):
        from repro.serve import SolveCache

        cache = SolveCache()
        seeds = component_seeds(random_graph, 4, seed=9)
        with Session(
            random_graph, voronoi_backend="delta-numpy", cache=cache
        ) as session:
            first = session.solve(seeds)
            second = session.solve(seeds)
        assert first.provenance["cache_hit"] is False
        assert second.provenance["cache_hit"] is True
        assert np.array_equal(first.edges, second.edges)
        assert cache.stats.solution_hits == 1


#: every behaviour-affecting field the fingerprint must distinguish,
#: with a value differing from the SolverConfig default
_DISTINGUISHING = {
    "engine": "bsp",
    "voronoi_backend": "delta-numpy",
    "workers": 3,
    "discipline": "fifo",
    "partition": "hash",
    "delegate_threshold": 7,
    "n_ranks": 5,
}


class TestConfigFingerprint:
    @given(
        fields=st.permutations(sorted(_DISTINGUISHING)),
    )
    @FAST
    def test_invariant_under_field_ordering(self, fields):
        """Building the same configuration with kwargs in any order
        yields the same fingerprint (the cache-key contract)."""
        kwargs = {name: _DISTINGUISHING[name] for name in fields}
        fp = SolverConfig.from_kwargs(**kwargs).fingerprint()
        ref = SolverConfig.from_kwargs(
            **{k: _DISTINGUISHING[k] for k in sorted(_DISTINGUISHING)}
        ).fingerprint()
        assert fp == ref

    @pytest.mark.parametrize("field_name", sorted(_DISTINGUISHING))
    def test_distinguishes_each_field(self, field_name):
        base = SolverConfig()
        changed = SolverConfig.from_kwargs(
            **{field_name: _DISTINGUISHING[field_name]}
        )
        assert base.fingerprint() != changed.fingerprint(), field_name

    def test_stable_within_process(self):
        assert SolverConfig().fingerprint() == SolverConfig().fingerprint()

    @given(
        n_ranks=st.integers(min_value=1, max_value=64),
        discipline=st.sampled_from(["fifo", "priority"]),
        backend=st.sampled_from([None, "dijkstra", "delta-numpy", "scipy"]),
    )
    @FAST
    def test_equal_configs_equal_fingerprints(self, n_ranks, discipline, backend):
        a = SolverConfig(
            n_ranks=n_ranks, discipline=discipline, voronoi_backend=backend
        )
        b = SolverConfig(
            n_ranks=n_ranks, discipline=discipline, voronoi_backend=backend
        )
        assert a.fingerprint() == b.fingerprint()

    def test_fault_knobs_excluded(self):
        """Recovery preserves parity, so the fault-tolerance knobs never
        change results — they must NOT change the fingerprint (cache
        entries stay shared across chaos and fault-free runs)."""
        from repro.faults import FaultPlan

        base = SolverConfig()
        hardened = SolverConfig(
            checkpoint_interval=2,
            max_restarts=5,
            worker_timeout_s=1.5,
            fault_plan=FaultPlan.kill(worker=0, superstep=3),
        )
        assert base.fingerprint() == hardened.fingerprint()


class TestFromKwargsAliases:
    @pytest.mark.parametrize("alias,canonical", sorted(CONFIG_FIELD_ALIASES.items()))
    def test_alias_maps_to_canonical(self, alias, canonical):
        value = _DISTINGUISHING.get(canonical, 2)
        with pytest.warns(DeprecationWarning, match=alias):
            via_alias = SolverConfig.from_kwargs(**{alias: value})
        via_canonical = SolverConfig.from_kwargs(**{canonical: value})
        assert via_alias.fingerprint() == via_canonical.fingerprint()

    def test_alias_and_canonical_together_rejected(self):
        with pytest.raises(TypeError, match="twice"):
            with pytest.warns(DeprecationWarning):
                SolverConfig.from_kwargs(ranks=4, n_ranks=4)

    def test_unknown_field_rejected(self):
        with pytest.raises(TypeError, match="warp_drive"):
            SolverConfig.from_kwargs(warp_drive=9)
