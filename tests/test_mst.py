"""Unit tests for the MST kernels and union-find."""

from __future__ import annotations

import numpy as np
import pytest

import networkx as nx

from repro.errors import GraphError
from repro.mst.boruvka import boruvka_mst, boruvka_rounds
from repro.mst.kruskal import kruskal_mst
from repro.mst.prim import prim_mst
from repro.mst.union_find import UnionFind
from tests.conftest import make_connected_graph


def edge_list_of(graph):
    src, dst, w = graph.edge_array()
    return src, dst, w


def nx_mst_weight(graph):
    t = nx.minimum_spanning_tree(graph.to_networkx(), weight="weight")
    return sum(d["weight"] for _, _, d in t.edges(data=True))


ALL_KERNELS = [prim_mst, kruskal_mst, boruvka_mst]


class TestUnionFind:
    def test_basic(self):
        uf = UnionFind(4)
        assert uf.n_components == 4
        assert uf.union(0, 1)
        assert not uf.union(1, 0)
        assert uf.connected(0, 1)
        assert not uf.connected(0, 2)
        assert uf.n_components == 3

    def test_transitive(self):
        uf = UnionFind(5)
        uf.union(0, 1)
        uf.union(1, 2)
        uf.union(3, 4)
        assert uf.connected(0, 2)
        assert not uf.connected(2, 3)
        uf.union(2, 3)
        assert uf.connected(0, 4)
        assert uf.n_components == 1


class TestMSTKernels:
    @pytest.mark.parametrize("kernel", ALL_KERNELS)
    @pytest.mark.parametrize("seed", range(4))
    def test_weight_matches_networkx(self, kernel, seed):
        g = make_connected_graph(30, 80, seed=seed)
        src, dst, w = edge_list_of(g)
        idx = kernel(g.n_vertices, src, dst, w)
        assert idx.size == g.n_vertices - 1
        assert int(w[idx].sum()) == nx_mst_weight(g)

    @pytest.mark.parametrize("kernel", ALL_KERNELS)
    def test_forest_on_disconnected(self, kernel):
        from repro.graph.csr import CSRGraph

        g = CSRGraph.from_edges(
            6, [(0, 1), (1, 2), (0, 2), (3, 4), (4, 5)], [3, 1, 2, 5, 7]
        )
        src, dst, w = edge_list_of(g)
        idx = kernel(6, src, dst, w)
        assert idx.size == 4  # two trees: 2 + 2 edges
        assert int(w[idx].sum()) == 1 + 2 + 5 + 7

    @pytest.mark.parametrize("kernel", ALL_KERNELS)
    def test_empty_input(self, kernel):
        idx = kernel(3, np.zeros(0, np.int64), np.zeros(0, np.int64), np.zeros(0, np.int64))
        assert idx.size == 0

    @pytest.mark.parametrize("kernel", ALL_KERNELS)
    def test_endpoint_range_check(self, kernel):
        with pytest.raises(GraphError):
            kernel(2, np.asarray([0]), np.asarray([5]), np.asarray([1]))

    @pytest.mark.parametrize("kernel", ALL_KERNELS)
    def test_length_mismatch(self, kernel):
        with pytest.raises(GraphError):
            kernel(2, np.asarray([0]), np.asarray([1]), np.asarray([1, 2]))

    def test_kernels_agree_on_weight(self):
        for seed in range(5):
            g = make_connected_graph(25, 70, seed=seed + 30)
            src, dst, w = edge_list_of(g)
            weights = {
                k.__name__: int(w[k(g.n_vertices, src, dst, w)].sum())
                for k in ALL_KERNELS
            }
            assert len(set(weights.values())) == 1, weights

    def test_deterministic(self):
        g = make_connected_graph(25, 70, seed=99)
        src, dst, w = edge_list_of(g)
        a = prim_mst(g.n_vertices, src, dst, w)
        b = prim_mst(g.n_vertices, src, dst, w)
        assert np.array_equal(a, b)


class TestBoruvkaRounds:
    def test_round_counts_decrease_geometrically(self):
        g = make_connected_graph(60, 150, seed=1)
        src, dst, w = edge_list_of(g)
        _, rounds = boruvka_rounds(g.n_vertices, src, dst, w)
        # available parallelism at least halves each round
        for a, b in zip(rounds, rounds[1:]):
            assert b <= (a + 1) // 2 + 1

    def test_first_round_is_n_components(self):
        g = make_connected_graph(40, 100, seed=2)
        src, dst, w = edge_list_of(g)
        _, rounds = boruvka_rounds(g.n_vertices, src, dst, w)
        assert rounds[0] == g.n_vertices
