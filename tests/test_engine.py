"""Unit tests for the discrete-event engine (async + BSP)."""

from __future__ import annotations

import pytest

from repro.errors import SimulationError
from repro.graph.generators import grid_graph
from repro.runtime.cost_model import MachineModel
from repro.runtime.engine import AsyncEngine, BSPEngine
from repro.runtime.partition import block_partition


class EchoProgram:
    """Forwards a counter along a fixed vertex chain: each visit at
    vertex v with payload (hops,) re-emits to v+1 while hops > 0."""

    def __init__(self, n_vertices: int):
        self.n = n_vertices
        self.visits: list[tuple[int, int]] = []

    def priority(self, payload):
        return float(payload[0])

    def visit(self, vertex, payload, emit):
        hops = payload[0]
        self.visits.append((vertex, hops))
        if hops > 0 and vertex + 1 < self.n:
            emit(vertex + 1, (hops - 1,))

    def visit_rank(self, rank, payload, emit):
        raise AssertionError("not used")


class RankEchoProgram:
    """Counts rank-addressed deliveries."""

    def __init__(self):
        self.rank_visits: list[int] = []

    def priority(self, payload):
        return 0.0

    def visit(self, vertex, payload, emit):
        # vertex message forwards once to rank 1
        emit(-2, ("to-rank-1",))

    def visit_rank(self, rank, payload, emit):
        self.rank_visits.append(rank)


def make_engine(n=16, ranks=4, discipline="priority"):
    part = block_partition(grid_graph(1, n), ranks)
    return AsyncEngine(part, MachineModel(), discipline), part


class TestAsyncEngine:
    def test_chain_delivery(self):
        engine, part = make_engine()
        prog = EchoProgram(16)
        stats = engine.run_phase("chain", prog, [(0, (7,))])
        # 8 visits: hops 7..0 at vertices 0..7
        assert [v for v, _ in sorted(prog.visits)] == list(range(8))
        assert stats.n_visits == 8
        assert stats.n_messages == 7

    def test_local_vs_remote_counting(self):
        engine, part = make_engine(n=16, ranks=4)
        prog = EchoProgram(16)
        stats = engine.run_phase("chain", prog, [(0, (15,))])
        # chain 0..15 over 4 contiguous blocks of 4: 3 boundary crossings
        assert stats.n_messages_remote == 3
        assert stats.n_messages_local == 12

    def test_sim_time_positive_and_busy_bounded(self):
        engine, _ = make_engine()
        prog = EchoProgram(16)
        stats = engine.run_phase("chain", prog, [(0, (7,))])
        assert stats.sim_time > 0
        assert (stats.busy_time <= stats.sim_time + 1e-12).all()

    def test_deterministic(self):
        runs = []
        for _ in range(2):
            engine, _ = make_engine()
            prog = EchoProgram(16)
            stats = engine.run_phase("chain", prog, [(0, (9,))])
            runs.append((stats.sim_time, stats.n_messages, tuple(prog.visits)))
        assert runs[0] == runs[1]

    def test_rank_addressed_messages(self):
        engine, _ = make_engine()
        prog = RankEchoProgram()
        stats = engine.run_phase("ranks", prog, [(0, ("go",))])
        assert prog.rank_visits == [1]
        assert stats.n_visits == 2

    def test_max_events_guard(self):
        engine, _ = make_engine()
        prog = EchoProgram(16)
        with pytest.raises(SimulationError, match="exceeded"):
            engine.run_phase("chain", prog, [(0, (15,))], max_events=3)

    def test_phases_accumulate_clock(self):
        engine, _ = make_engine()
        prog = EchoProgram(16)
        engine.run_phase("one", prog, [(0, (3,))])
        clock_after_one = engine.clock
        engine.run_phase("two", prog, [(0, (3,))])
        assert engine.clock > clock_after_one
        assert [p.name for p in engine.phases] == ["one", "two"]
        assert engine.total_time() == pytest.approx(
            sum(p.sim_time for p in engine.phases)
        )

    def test_analytic_phase(self):
        engine, _ = make_engine()
        stats = engine.add_analytic_phase("mst", 1.5, bytes_sent=100)
        assert stats.sim_time == 1.5
        assert engine.clock == pytest.approx(1.5)

    def test_empty_phase(self):
        engine, _ = make_engine()
        prog = EchoProgram(16)
        stats = engine.run_phase("noop", prog, [])
        assert stats.sim_time == 0.0
        assert stats.n_visits == 0

    def test_peak_queue_tracked(self):
        engine, _ = make_engine(ranks=1)
        prog = EchoProgram(16)
        # burst of initial messages lands in one rank's buffer
        stats = engine.run_phase("burst", prog, [(i, (0,)) for i in range(10)])
        assert stats.peak_queue_total >= 2


class TestPhaseStats:
    def test_parallel_efficiency(self):
        engine, _ = make_engine()
        prog = EchoProgram(16)
        stats = engine.run_phase("chain", prog, [(0, (7,))])
        assert 0.0 < stats.parallel_efficiency() <= 1.0


class TestBSPEngine:
    def test_same_visits_as_async(self):
        part = block_partition(grid_graph(1, 16), 4)
        bsp = BSPEngine(part, MachineModel(), "priority")
        prog = EchoProgram(16)
        stats = bsp.run_phase("chain", prog, [(0, (7,))])
        assert stats.n_visits == 8
        assert bsp.n_supersteps == 8  # one hop per superstep

    def test_bsp_slower_than_async_on_chain(self):
        part = block_partition(grid_graph(1, 32), 4)
        machine = MachineModel()
        async_prog = EchoProgram(32)
        async_stats = AsyncEngine(part, machine, "priority").run_phase(
            "c", async_prog, [(0, (31,))]
        )
        bsp_prog = EchoProgram(32)
        bsp_stats = BSPEngine(part, machine, "priority").run_phase(
            "c", bsp_prog, [(0, (31,))]
        )
        # same work, but BSP pays a barrier per superstep
        assert bsp_stats.sim_time > async_stats.sim_time

    def test_superstep_cap(self):
        part = block_partition(grid_graph(1, 16), 2)
        bsp = BSPEngine(part, MachineModel(), "fifo")
        prog = EchoProgram(16)
        with pytest.raises(SimulationError, match="converge"):
            bsp.run_phase("chain", prog, [(0, (15,))], max_supersteps=2)
