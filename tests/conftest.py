"""Shared fixtures and graph factories for the test suite."""

from __future__ import annotations

import numpy as np
import pytest

from repro.graph.connectivity import largest_component_vertices
from repro.graph.csr import CSRGraph
from repro.graph.generators import (
    erdos_renyi_graph,
    grid_graph,
    preferential_attachment_graph,
    rmat_graph,
)
from repro.graph.weights import assign_uniform_weights


def make_connected_graph(
    n: int = 40,
    m: int = 100,
    *,
    weight_high: int = 20,
    seed: int = 0,
) -> CSRGraph:
    """A connected weighted random graph: ER topology restricted to its
    largest component (relabelled), plus uniform integer weights."""
    g = erdos_renyi_graph(n, m, seed=seed)
    comp = largest_component_vertices(g)
    sub, _ = g.induced_subgraph(comp)
    return assign_uniform_weights(sub, (1, weight_high), seed=seed + 1)


def component_seeds(graph: CSRGraph, k: int, *, seed: int = 0) -> np.ndarray:
    """k distinct seeds from the largest component."""
    comp = largest_component_vertices(graph)
    rng = np.random.default_rng(seed)
    k = min(k, comp.size)
    return np.sort(rng.choice(comp, size=k, replace=False)).astype(np.int64)


@pytest.fixture
def small_grid() -> CSRGraph:
    """6x6 unit-weight grid (deterministic topology)."""
    return grid_graph(6, 6)


@pytest.fixture
def weighted_grid() -> CSRGraph:
    """8x8 grid with weights in [1, 9]."""
    return assign_uniform_weights(grid_graph(8, 8), (1, 9), seed=42)


@pytest.fixture
def random_graph() -> CSRGraph:
    """Connected random weighted graph (~35 vertices)."""
    return make_connected_graph(40, 110, seed=7)


@pytest.fixture
def skewed_graph() -> CSRGraph:
    """Small RMAT graph with hubs (exercises delegates/partitioning)."""
    g = rmat_graph(8, 6, seed=3)
    return assign_uniform_weights(g, (1, 50), seed=4)


@pytest.fixture
def citation_graph() -> CSRGraph:
    """Preferential-attachment graph (connected by construction)."""
    g = preferential_attachment_graph(120, 3, seed=5)
    return assign_uniform_weights(g, (1, 30), seed=6)
