"""Fig. 7 bench — edge-weight distribution vs runtime, FIFO vs priority.

Expected shape: the FIFO configuration's simulated time varies more
across weight ranges than the priority configuration's (the paper's
14.7x std-dev gap), and priority is faster at every range.
"""

from __future__ import annotations

import pytest

from repro.core.config import SolverConfig
from repro.core.solver import DistributedSteinerSolver
from repro.graph.weights import WeightSpec, assign_uniform_weights
from repro.harness.datasets import load_dataset
from repro.seeds.selection import select_seeds

WEIGHT_HIGHS = [100, 1_000, 10_000, 100_000]
K = 100  # paper |S|=1000 scaled


def reweighted_lvj(high: int):
    graph = assign_uniform_weights(
        load_dataset("LVJ"), WeightSpec(1, high), seed=7
    )
    seeds = select_seeds(graph, K, "bfs-level", seed=1)
    return graph, seeds


@pytest.mark.parametrize("high", WEIGHT_HIGHS)
@pytest.mark.parametrize("discipline", ["fifo", "priority"])
def test_weight_range(benchmark, high, discipline):
    graph, seeds = reweighted_lvj(high)
    solver = DistributedSteinerSolver(
        graph, SolverConfig(n_ranks=16, discipline=discipline)
    )

    result = benchmark.pedantic(solver.solve, args=(seeds,), rounds=1, iterations=1)

    benchmark.group = f"fig7 weights [1,{high}]"
    benchmark.extra_info["discipline"] = discipline
    benchmark.extra_info["sim_time_s"] = result.sim_time()
    benchmark.extra_info["messages"] = result.message_count()
