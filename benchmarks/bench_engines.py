"""Benchmark the pluggable runtime engines.

Times every registered engine (``repro.runtime.engines``) driving the
Voronoi-cell program over a partitioned generator graph, verifies the
converged ``(src, dist)`` state is identical — and that the batched BSP
engine reproduces the per-message BSP engine's message counts exactly —
before any number is recorded, and writes ``BENCH_engines.json``: the
perf-trajectory record the CI bench-smoke job uploads as an artifact.

Usage::

    PYTHONPATH=src python benchmarks/bench_engines.py             # full suite
    PYTHONPATH=src python benchmarks/bench_engines.py --quick     # tiny CI suite
    PYTHONPATH=src python benchmarks/bench_engines.py --suite scale  # 1M edges
    PYTHONPATH=src python benchmarks/bench_engines.py --quick \
        --check benchmarks/BENCH_engines_baseline.json            # regression gate

Suites: ``quick`` (~6K edges), ``full`` (~100K edges), ``scale`` (1M
edges — only the vectorised/compiled engines run; the per-message
``bsp``/``async-heap`` executors push millions of Python callbacks and
would take hours, so the scale speedup column is relative to
``bsp-batched``) and ``xl`` (10M edges, on-demand, no committed
baseline).  Native (numba) kernels are compiled by an explicit
:func:`repro.native.warmup` call before any timing loop (pinned cache
dir, see ``repro.native``), so JIT compilation never lands inside a
timing column.  The ``bsp-native`` engine is gated against
``bsp-batched`` with ``--min-speedup-native`` (the CI numba job uses
2.0 on the scale suite); without numba the entry runs as its twin and
the gate is skipped with a note.

The regression gate compares the *wall-clock speedup ratio* of the
vectorised ``bsp-batched`` engine over the per-message ``bsp`` engine
against the committed baseline: ratios are far more stable across
machines than absolute seconds.  The gate fails (exit code 1) when the
measured speedup drops below ``(1 - tolerance)`` times the baseline
speedup (default tolerance 20%), or — with ``--min-speedup`` — below an
absolute floor (the acceptance target is >=3x on the 100K-edge full
suite; quick-suite graphs are too small to amortise array overhead, so
the floor there is correspondingly lower).  The multiprocess ``bsp-mp``
engine is gated the same way against its own baseline entry and the
``--min-speedup-mp`` absolute floor (the CI job uses 1.5x at the
default 2-worker pool) — its counters must additionally match ``bsp``
exactly, which is asserted before any timing is recorded.  A baseline
engine entry may carry its own ``"min_speedup"`` which *overrides* the
command-line absolute floor for that graph (grid-5k-unit gates bsp-mp
at 1.0x — the superstep-coalescing worst case — rather than the
suite-wide 1.5x).  ``--min-mp-vs-batched`` additionally gates the
direct wall-clock ratio ``bsp-batched / bsp-mp`` (the IPC-gap target:
the pooled engine must not trail the in-process vectorised engine by
more than the given factor).  Every bsp-mp gate needs parallel
hardware to be meaningful — on a single-CPU host the pool's workers
serialise and the ratios measure scheduler overhead, so the mp gates
are skipped with a note (exactly as the JIT gate is skipped without
numba).

Determinism: every graph is built from fixed generator seeds, seeds are
drawn from a fixed RNG, engines iterate in registry order (default
first, rest alphabetical) and the ``bsp-mp`` pool size is an explicit
knob (``--workers``, default: the engine's fixed ``DEFAULT_WORKERS``) —
so everything in two bench logs except the wall-clock columns is
identical line-for-line.
"""

from __future__ import annotations

import argparse
import json
import os
import platform
import sys
import time
from pathlib import Path

import numpy as np

from repro.core.voronoi_visitor import VoronoiProgram
from repro.graph.connectivity import largest_component_vertices
from repro.graph.generators import erdos_renyi_graph, grid_graph, rmat_graph
from repro.graph.weights import assign_uniform_weights
from repro.native import native_status, warmup
from repro.runtime.engines import (
    available_engines,
    engine_availability,
    run_phase_with,
    verify_engines_agree,
)
from repro.runtime.partition import block_partition

#: the engines whose speedups are gated, and their shared reference
GATED_ENGINE = "bsp-batched"
MP_ENGINE = "bsp-mp"
REFERENCE_ENGINE = "bsp"
#: the JIT-tier gate: bsp-native vs bsp-batched (skipped without numba)
NATIVE_ENGINE = "bsp-native"
NATIVE_REFERENCE = "bsp-batched"

#: simulated world size for every run (the paper's ranks-per-node)
N_RANKS = 16

#: name -> (builder, seed count); the full suite centres on the
#: ~100K-edge generator graphs named in the perf target
SUITES = {
    "full": {
        "rmat-100k-w100": (
            lambda: assign_uniform_weights(
                rmat_graph(14, 7, seed=1), (1, 100), seed=2
            ),
            30,
        ),
        "er-100k-w100": (
            lambda: assign_uniform_weights(
                erdos_renyi_graph(30_000, 100_000, seed=3), (1, 100), seed=4
            ),
            30,
        ),
        "grid-100k-unit": (lambda: grid_graph(200, 250), 20),
    },
    "quick": {
        "rmat-6k-w100": (
            lambda: assign_uniform_weights(
                rmat_graph(10, 6, seed=1), (1, 100), seed=2
            ),
            10,
        ),
        "er-6k-w100": (
            lambda: assign_uniform_weights(
                erdos_renyi_graph(2_000, 6_000, seed=3), (1, 100), seed=4
            ),
            10,
        ),
        "grid-5k-unit": (lambda: grid_graph(50, 50), 8),
    },
    "scale": {
        "rmat-1m-w100": (
            lambda: assign_uniform_weights(
                rmat_graph(17, 8, seed=1), (1, 100), seed=2
            ),
            50,
        ),
        "er-1m-w100": (
            lambda: assign_uniform_weights(
                erdos_renyi_graph(250_000, 1_000_000, seed=3), (1, 100), seed=4
            ),
            50,
        ),
    },
    "xl": {
        "rmat-10m-w100": (
            lambda: assign_uniform_weights(
                rmat_graph(20, 10, seed=1), (1, 100), seed=2
            ),
            100,
        ),
    },
}

#: which engines a suite runs (None = every registered engine) and
#: which one its speedup column is relative to.  The per-message
#: executors (async-heap, bsp) are infeasible at >=1M edges, so the
#: scale/xl suites run the vectorised family and rebase on bsp-batched.
SUITE_ENGINES: dict[str, list[str] | None] = {
    "full": None,
    "quick": None,
    "scale": ["bsp-batched", "bsp-mp", "bsp-native"],
    "xl": ["bsp-batched", "bsp-native"],
}
SUITE_REFERENCE = {
    "full": REFERENCE_ENGINE,
    "quick": REFERENCE_ENGINE,
    "scale": "bsp-batched",
    "xl": "bsp-batched",
}


def pick_seeds(graph, k: int, rng_seed: int = 1) -> np.ndarray:
    """``k`` distinct seeds from the largest component."""
    comp = largest_component_vertices(graph)
    rng = np.random.default_rng(rng_seed)
    return np.sort(rng.choice(comp, size=min(k, comp.size), replace=False))


def suite_engine_names(suite: str) -> list[str]:
    """The suite's engine subset, restricted to registered names."""
    subset = SUITE_ENGINES[suite]
    names = available_engines()
    if subset is None:
        return names
    return [e for e in subset if e in names]


def bench_graph(
    name: str, builder, k: int, repeats: int, workers: int | None,
    engine_names: list[str], reference: str,
) -> dict:
    """Time the suite's engines on one graph; returns the record."""
    graph = builder()
    seeds = pick_seeds(graph, k)
    partition = block_partition(graph, N_RANKS)

    def fresh_program() -> VoronoiProgram:
        return VoronoiProgram(partition)

    # never record numbers for wrong answers: states must be identical,
    # and the whole BSP family must agree on message counts exactly
    verified = verify_engines_agree(
        partition,
        fresh_program,
        lambda prog: prog.initial_messages(seeds),
        lambda prog: (prog.src, prog.dist),
        engines=engine_names,
        workers=workers,
    )
    count_ref = reference if reference.startswith("bsp") else REFERENCE_ENGINE
    ref_stats = verified[count_ref].stats
    for gated in engine_names:
        if not gated.startswith("bsp") or gated == count_ref:
            continue
        gated_stats = verified[gated].stats
        if (ref_stats.n_messages_local, ref_stats.n_messages_remote) != (
            gated_stats.n_messages_local,
            gated_stats.n_messages_remote,
        ):
            raise AssertionError(
                f"{gated} message counts diverged from {count_ref}"
            )

    engines: dict[str, dict] = {}
    availability = engine_availability()
    for engine in engine_names:
        best = None
        for _ in range(repeats):
            prog = fresh_program()
            result = run_phase_with(
                engine,
                partition,
                prog,
                list(prog.initial_messages(seeds)),
                name="Voronoi Cell",
                workers=workers,
            )
            if best is None or result.elapsed_s < best["seconds"]:
                best = {
                    "seconds": round(result.elapsed_s, 6),
                    "messages": result.stats.n_messages,
                    "supersteps": result.n_supersteps,
                    "workers": result.workers,
                    "status": availability[engine]["status"],
                }
        engines[engine] = best
    ref = engines[reference]["seconds"]
    for record in engines.values():
        record["speedup"] = round(ref / record["seconds"], 3)

    print(f"{name}: |V|={graph.n_vertices} |E|={graph.n_edges} |S|={seeds.size}")
    for engine, record in engines.items():
        ss = record["supersteps"]
        w = record["workers"]
        note = "" if record["status"] == "available" else f" [{record['status']}]"
        print(
            f"  {engine:14s} {record['seconds'] * 1e3:9.2f} ms"
            f"  {record['speedup']:6.2f}x vs {reference}"
            f"  msgs={record['messages']}"
            + (f" supersteps={ss}" if ss is not None else "")
            + (f" workers={w}" if w is not None else "")
            + note
        )
    return {
        "n_vertices": graph.n_vertices,
        "n_edges": graph.n_edges,
        "n_seeds": int(seeds.size),
        "n_ranks": N_RANKS,
        "reference": reference,
        "engines": engines,
    }


def check_baseline(
    results: dict,
    baseline_path: Path,
    tolerance: float,
    min_speedup: float | None,
    min_speedup_mp: float | None,
    min_speedup_native: float | None,
    min_mp_vs_batched: float | None = None,
) -> int:
    """Gate: fail when a gated engine's speedup regressed.

    Each gated engine (``bsp-batched``, ``bsp-mp``) is compared against
    its own baseline entry; a graph/engine pair absent from the baseline
    is skipped (lets the baseline trail new suites by one PR).  A
    baseline engine entry carrying ``"min_speedup"`` overrides the
    command-line absolute floor for that one graph.  The
    ``min_mp_vs_batched`` gate compares raw wall-clock —
    ``bsp-batched`` seconds over ``bsp-mp`` seconds — against an
    absolute floor.  The JIT-tier gate (``bsp-native`` vs
    ``bsp-batched``) additionally needs numba, and every bsp-mp gate
    needs >=2 CPUs — without them the ratios measure the fallback twin
    or scheduler overhead respectively, so those gates are skipped with
    a note.
    """
    baseline = json.loads(baseline_path.read_text())
    native_active = native_status()["available"]
    n_cpus = os.cpu_count() or 1
    mp_hardware = n_cpus >= 2
    failures = []
    gates = ((GATED_ENGINE, min_speedup), (MP_ENGINE, min_speedup_mp))
    for name, record in results.items():
        base_graph = baseline.get("results", {}).get(name)
        if base_graph is None:
            print(f"[check] {name}: no baseline entry, skipping")
            continue
        engines = record["engines"]
        reference = record.get("reference", REFERENCE_ENGINE)
        for engine, abs_floor in gates:
            if engine not in engines or engine == reference:
                continue  # suite reference or absent: ratio not meaningful
            if engine == MP_ENGINE and not mp_hardware:
                print(
                    f"[check] {name}: {engine} pool serialises on "
                    f"{n_cpus} CPU, mp gate skipped"
                )
                continue
            base_engine = base_graph["engines"].get(engine)
            if base_engine is None:
                print(f"[check] {name}: no {engine} baseline, skipping")
                continue
            base = base_engine["speedup"]
            measured = engines[engine]["speedup"]
            floor = base * (1.0 - tolerance)
            abs_floor = base_engine.get("min_speedup", abs_floor)
            if abs_floor is not None:
                floor = max(floor, abs_floor)
            status = "OK" if measured >= floor else "REGRESSED"
            print(
                f"[check] {name}: {engine} speedup {measured:.2f}x "
                f"(baseline {base:.2f}x, floor {floor:.2f}x) {status}"
            )
            if measured < floor:
                failures.append(f"{name}:{engine}")
        if (
            min_mp_vs_batched is not None
            and MP_ENGINE in engines
            and GATED_ENGINE in engines
        ):
            if not mp_hardware:
                print(
                    f"[check] {name}: {MP_ENGINE} pool serialises on "
                    f"{n_cpus} CPU, mp-vs-batched gate skipped"
                )
            else:
                measured = (
                    engines[GATED_ENGINE]["seconds"]
                    / engines[MP_ENGINE]["seconds"]
                )
                status = "OK" if measured >= min_mp_vs_batched else "REGRESSED"
                print(
                    f"[check] {name}: {MP_ENGINE} wall-clock "
                    f"{measured:.2f}x vs {GATED_ENGINE} "
                    f"(floor {min_mp_vs_batched:.2f}x) {status}"
                )
                if measured < min_mp_vs_batched:
                    failures.append(f"{name}:{MP_ENGINE}-vs-{GATED_ENGINE}")
        if NATIVE_ENGINE in engines:
            if not native_active:
                print(
                    f"[check] {name}: {NATIVE_ENGINE} runs as its twin "
                    f"(numba absent), JIT gate skipped"
                )
            else:
                measured = (
                    engines[NATIVE_REFERENCE]["seconds"]
                    / engines[NATIVE_ENGINE]["seconds"]
                )
                floor = 0.0
                base_engine = base_graph["engines"].get(NATIVE_ENGINE)
                if (
                    base_engine is not None
                    and base_engine.get("status") == "available"
                ):
                    base_ref = base_graph["engines"][NATIVE_REFERENCE]
                    base = base_ref["seconds"] / base_engine["seconds"]
                    floor = base * (1.0 - tolerance)
                if min_speedup_native is not None:
                    floor = max(floor, min_speedup_native)
                status = "OK" if measured >= floor else "REGRESSED"
                print(
                    f"[check] {name}: {NATIVE_ENGINE} speedup {measured:.2f}x "
                    f"vs {NATIVE_REFERENCE} (floor {floor:.2f}x) {status}"
                )
                if measured < floor:
                    failures.append(f"{name}:{NATIVE_ENGINE}")
    if failures:
        print(f"[check] FAILED: regressions on {failures}")
        return 1
    print("[check] passed")
    return 0


def main(argv: list[str] | None = None) -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument(
        "--quick", action="store_true",
        help="tiny inputs (CI smoke job); alias for --suite quick",
    )
    parser.add_argument(
        "--suite", choices=sorted(SUITES), default=None,
        help="workload size: quick (~6K edges), full (~100K, default), "
        "scale (1M, vectorised/compiled engines only), xl (10M, on-demand)",
    )
    parser.add_argument(
        "--out", type=Path, default=Path("BENCH_engines.json"),
        help="output JSON path (default: ./BENCH_engines.json)",
    )
    parser.add_argument(
        "--repeats", type=int, default=3, help="timing repeats, best-of"
    )
    parser.add_argument(
        "--check", type=Path, default=None,
        help="baseline JSON; exit 1 if the batched engine regressed",
    )
    parser.add_argument(
        "--tolerance", type=float, default=0.20,
        help="allowed fractional speedup regression vs baseline (default 0.20)",
    )
    parser.add_argument(
        "--min-speedup", type=float, default=None,
        help="absolute speedup floor for the gated engine (acceptance "
        "target: 3.0 on the full suite)",
    )
    parser.add_argument(
        "--min-speedup-mp", type=float, default=None,
        help="absolute speedup floor for the bsp-mp engine vs bsp "
        "(CI gate: 1.5 at the default 2-worker pool)",
    )
    parser.add_argument(
        "--min-mp-vs-batched", type=float, default=None,
        help="absolute floor for the bsp-batched/bsp-mp wall-clock "
        "ratio (the IPC-gap gate: 0.95 on the full suite in CI); "
        "skipped on single-CPU hosts",
    )
    parser.add_argument(
        "--min-speedup-native", type=float, default=None,
        help="absolute floor for bsp-native vs bsp-batched (the CI "
        "numba job gates 2.0 on the scale suite); ignored without numba",
    )
    parser.add_argument(
        "--workers", type=int, default=None,
        help="bsp-mp process-pool size (default: the engine's fixed "
        "DEFAULT_WORKERS, for run-to-run reproducibility)",
    )
    args = parser.parse_args(argv)
    if args.suite and args.quick:
        parser.error("--quick and --suite are mutually exclusive")
    suite = args.suite or ("quick" if args.quick else "full")

    status = native_status()
    n_warmed = warmup()  # JIT compilation happens HERE, not in a timing loop
    print(
        f"native tier: {'numba ' + str(status['version']) if status['available'] else 'absent'}"
        + (f" (warmed {n_warmed} kernel modules,"
           f" cache {status['cache_dir']})" if status["available"] else
           f" ({status['reason']}) — bsp-native runs as its NumPy twin")
    )

    engine_names = suite_engine_names(suite)
    reference = SUITE_REFERENCE[suite]
    results = {
        name: bench_graph(
            name, builder, k, args.repeats, args.workers, engine_names, reference
        )
        for name, (builder, k) in SUITES[suite].items()
    }
    payload = {
        "meta": {
            "suite": suite,
            "python": platform.python_version(),
            "numpy": np.__version__,
            "machine": platform.machine(),
            "timestamp": time.strftime("%Y-%m-%dT%H:%M:%SZ", time.gmtime()),
            "gated_engine": GATED_ENGINE,
            "mp_engine": MP_ENGINE,
            "native_engine": NATIVE_ENGINE,
            "reference_engine": reference,
            "native": status,
        },
        "results": results,
    }
    args.out.write_text(json.dumps(payload, indent=2) + "\n")
    print(f"wrote {args.out}")

    if args.check is not None:
        return check_baseline(
            results,
            args.check,
            args.tolerance,
            args.min_speedup,
            args.min_speedup_mp,
            args.min_speedup_native,
            args.min_mp_vs_batched,
        )
    return 0


if __name__ == "__main__":
    sys.exit(main())
