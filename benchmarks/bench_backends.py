"""Benchmark the pluggable multi-source shortest-path backends.

Times every registered backend (``repro.shortest_paths.backends``) on
generator graphs, verifies they agree bit-for-bit before any number is
recorded, and writes ``BENCH_backends.json`` — the perf-trajectory
record the CI bench-smoke job uploads as an artifact.

Usage::

    PYTHONPATH=src python benchmarks/bench_backends.py             # full suite
    PYTHONPATH=src python benchmarks/bench_backends.py --quick     # tiny CI suite
    PYTHONPATH=src python benchmarks/bench_backends.py --suite scale  # 1M edges
    PYTHONPATH=src python benchmarks/bench_backends.py --suite xl     # 10M edges
    PYTHONPATH=src python benchmarks/bench_backends.py --quick \
        --check benchmarks/BENCH_backends_baseline.json            # regression gate

Suites: ``quick`` (~6K edges, CI smoke), ``full`` (~100K edges, the
original perf target), ``scale`` (1M edges — the JIT-tier target; only
the compiled/vectorised backends run, the pure-Python kernels would
take hours) and ``xl`` (10M edges, on-demand — same subset, minutes
per backend; no committed baseline, run it when touching the kernels).
Every native (numba) kernel is compiled by an explicit
:func:`repro.native.warmup` call *before* any timing loop, so JIT
compilation never lands inside a timing column, and the numba cache
directory is pinned (see ``repro.native``) so repeated runs reload
compiled artifacts instead of recompiling.

The regression gate compares *speedup ratios* against the committed
baseline: ratios are far more stable across machines than absolute
seconds.  The gate fails (exit code 1) when a measured speedup drops
below ``(1 - tolerance)`` times the baseline speedup (default
tolerance 20%), or below an absolute floor.  Two ratios are gated:

* ``delta-numpy`` vs the suite reference (the original vectorisation
  gate, full/quick suites where the reference is ``dijkstra``);
* ``delta-numba`` vs ``delta-numpy`` (the JIT-tier gate,
  ``--min-speedup-native``; the CI numba job uses 3.0 on the scale
  suite).  Skipped with a note when numba is absent — the entry is
  then the fallback twin and the ratio is 1 by construction.
"""

from __future__ import annotations

import argparse
import json
import platform
import sys
import time
from pathlib import Path

import numpy as np

from repro.graph.connectivity import largest_component_vertices
from repro.graph.generators import erdos_renyi_graph, grid_graph, rmat_graph
from repro.graph.weights import assign_uniform_weights
from repro.native import native_status, warmup
from repro.shortest_paths.backends import (
    available_backends,
    backend_availability,
    compute_multisource,
    verify_backends_agree,
)

#: the vectorisation gate: delta-numpy vs the suite reference
GATED_BACKEND = "delta-numpy"
#: the JIT-tier gate: delta-numba vs delta-numpy (skipped without numba)
NATIVE_BACKEND = "delta-numba"
NATIVE_REFERENCE = "delta-numpy"

#: name -> (builder, seed count); the full suite centres on the
#: ~100K-edge generator graphs named in the original perf target, the
#: scale/xl suites on the 1M/10M-edge graphs the JIT tier targets
SUITES = {
    "full": {
        "rmat-100k-w100": (
            lambda: assign_uniform_weights(
                rmat_graph(14, 7, seed=1), (1, 100), seed=2
            ),
            30,
        ),
        "er-100k-w100": (
            lambda: assign_uniform_weights(
                erdos_renyi_graph(30_000, 100_000, seed=3), (1, 100), seed=4
            ),
            30,
        ),
        "grid-100k-unit": (lambda: grid_graph(200, 250), 20),
    },
    "quick": {
        "rmat-6k-w100": (
            lambda: assign_uniform_weights(
                rmat_graph(10, 6, seed=1), (1, 100), seed=2
            ),
            10,
        ),
        "er-6k-w100": (
            lambda: assign_uniform_weights(
                erdos_renyi_graph(2_000, 6_000, seed=3), (1, 100), seed=4
            ),
            10,
        ),
        "grid-5k-unit": (lambda: grid_graph(50, 50), 8),
    },
    "scale": {
        "rmat-1m-w100": (
            lambda: assign_uniform_weights(
                rmat_graph(17, 8, seed=1), (1, 100), seed=2
            ),
            50,
        ),
        "er-1m-w100": (
            lambda: assign_uniform_weights(
                erdos_renyi_graph(250_000, 1_000_000, seed=3), (1, 100), seed=4
            ),
            50,
        ),
    },
    "xl": {
        "rmat-10m-w100": (
            lambda: assign_uniform_weights(
                rmat_graph(20, 10, seed=1), (1, 100), seed=2
            ),
            100,
        ),
    },
}

#: which backends a suite runs (None = every registered backend) and
#: which one its speedup column is relative to.  The pure-Python
#: kernels (dijkstra, spfa, delta-python) are infeasible at >=1M edges,
#: so the scale/xl suites run only the vectorised/compiled tiers and
#: rebase the speedup column on ``delta-numpy``.
SUITE_BACKENDS: dict[str, list[str] | None] = {
    "full": None,
    "quick": None,
    "scale": ["delta-numpy", "delta-numba", "scipy"],
    "xl": ["delta-numpy", "delta-numba", "scipy"],
}
SUITE_REFERENCE = {
    "full": "dijkstra",
    "quick": "dijkstra",
    "scale": "delta-numpy",
    "xl": "delta-numpy",
}


def pick_seeds(graph, k: int, rng_seed: int = 1) -> np.ndarray:
    """``k`` distinct seeds from the largest component."""
    comp = largest_component_vertices(graph)
    rng = np.random.default_rng(rng_seed)
    return np.sort(rng.choice(comp, size=min(k, comp.size), replace=False))


def suite_backend_names(suite: str) -> list[str]:
    """The suite's backend subset, restricted to registered names."""
    subset = SUITE_BACKENDS[suite]
    names = available_backends()
    if subset is None:
        return names
    return [b for b in subset if b in names]


def bench_graph(
    name: str, builder, k: int, repeats: int, backend_names: list[str],
    reference: str,
) -> dict:
    """Time the suite's backends on one graph; returns the record."""
    graph = builder()
    seeds = pick_seeds(graph, k)
    # never record numbers for wrong answers
    verify_backends_agree(graph, seeds, backends=backend_names)

    backends: dict[str, dict] = {}
    availability = backend_availability()
    for backend in backend_names:
        best = min(
            compute_multisource(graph, seeds, backend=backend).elapsed_s
            for _ in range(repeats)
        )
        backends[backend] = {
            "seconds": round(best, 6),
            "status": availability[backend]["status"],
        }
    ref = backends[reference]["seconds"]
    for record in backends.values():
        record["speedup"] = round(ref / record["seconds"], 3)

    print(f"{name}: |V|={graph.n_vertices} |E|={graph.n_edges} |S|={seeds.size}")
    for backend, record in backends.items():
        note = "" if record["status"] == "available" else f" [{record['status']}]"
        print(
            f"  {backend:14s} {record['seconds'] * 1e3:9.2f} ms"
            f"  {record['speedup']:6.2f}x vs {reference}{note}"
        )
    return {
        "n_vertices": graph.n_vertices,
        "n_edges": graph.n_edges,
        "n_seeds": int(seeds.size),
        "reference": reference,
        "backends": backends,
    }


def check_baseline(
    results: dict,
    baseline_path: Path,
    tolerance: float,
    min_speedup_native: float | None,
) -> int:
    """Gate: fail when a gated speedup ratio regressed.

    The vectorisation gate (``delta-numpy`` vs the suite reference)
    runs whenever both appear in a graph's record and the baseline has
    an entry.  The JIT-tier gate (``delta-numba`` vs ``delta-numpy``)
    additionally needs numba: without it the entry is the fallback twin
    and the ratio is ~1 by construction, so the gate is skipped with a
    note instead of asserting a meaningless number.
    """
    baseline = json.loads(baseline_path.read_text())
    native_active = native_status()["available"]
    failures = []
    for name, record in results.items():
        base_graph = baseline.get("results", {}).get(name)
        if base_graph is None:
            print(f"[check] {name}: no baseline entry, skipping")
            continue
        backends = record["backends"]
        reference = record.get("reference", "dijkstra")
        # gate 1: the vectorised backend vs the suite reference
        if GATED_BACKEND in backends and reference != GATED_BACKEND:
            base_entry = base_graph["backends"].get(GATED_BACKEND)
            if base_entry is None:
                print(f"[check] {name}: no {GATED_BACKEND} baseline, skipping")
            else:
                base = base_entry["speedup"]
                measured = backends[GATED_BACKEND]["speedup"]
                floor = base * (1.0 - tolerance)
                status = "OK" if measured >= floor else "REGRESSED"
                print(
                    f"[check] {name}: {GATED_BACKEND} speedup {measured:.2f}x "
                    f"(baseline {base:.2f}x, floor {floor:.2f}x) {status}"
                )
                if measured < floor:
                    failures.append(f"{name}:{GATED_BACKEND}")
        # gate 2: the JIT tier vs its NumPy twin
        if NATIVE_BACKEND in backends:
            if not native_active:
                print(
                    f"[check] {name}: {NATIVE_BACKEND} is the fallback twin "
                    f"(numba absent), JIT gate skipped"
                )
            else:
                measured = (
                    backends[NATIVE_REFERENCE]["seconds"]
                    / backends[NATIVE_BACKEND]["seconds"]
                )
                floor = 0.0
                base_entry = base_graph["backends"].get(NATIVE_BACKEND)
                if (
                    base_entry is not None
                    and base_entry.get("status") == "available"
                ):
                    base_ref = base_graph["backends"][NATIVE_REFERENCE]
                    base = base_ref["seconds"] / base_entry["seconds"]
                    floor = base * (1.0 - tolerance)
                if min_speedup_native is not None:
                    floor = max(floor, min_speedup_native)
                status = "OK" if measured >= floor else "REGRESSED"
                print(
                    f"[check] {name}: {NATIVE_BACKEND} speedup {measured:.2f}x "
                    f"vs {NATIVE_REFERENCE} (floor {floor:.2f}x) {status}"
                )
                if measured < floor:
                    failures.append(f"{name}:{NATIVE_BACKEND}")
    if failures:
        print(f"[check] FAILED: regressions on {failures}")
        return 1
    print("[check] passed")
    return 0


def main(argv: list[str] | None = None) -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument(
        "--quick", action="store_true",
        help="tiny inputs (CI smoke job); alias for --suite quick",
    )
    parser.add_argument(
        "--suite", choices=sorted(SUITES), default=None,
        help="workload size: quick (~6K edges), full (~100K, default), "
        "scale (1M, compiled/vectorised backends only), xl (10M, on-demand)",
    )
    parser.add_argument(
        "--out", type=Path, default=Path("BENCH_backends.json"),
        help="output JSON path (default: ./BENCH_backends.json)",
    )
    parser.add_argument(
        "--repeats", type=int, default=3, help="timing repeats, best-of"
    )
    parser.add_argument(
        "--check", type=Path, default=None,
        help="baseline JSON; exit 1 if a gated speedup regressed",
    )
    parser.add_argument(
        "--tolerance", type=float, default=0.20,
        help="allowed fractional speedup regression vs baseline (default 0.20)",
    )
    parser.add_argument(
        "--min-speedup-native", type=float, default=None,
        help="absolute floor for delta-numba vs delta-numpy (the CI "
        "numba job gates 3.0 on the scale suite); ignored without numba",
    )
    args = parser.parse_args(argv)
    if args.suite and args.quick:
        parser.error("--quick and --suite are mutually exclusive")
    suite = args.suite or ("quick" if args.quick else "full")

    status = native_status()
    n_warmed = warmup()  # JIT compilation happens HERE, not in a timing loop
    print(
        f"native tier: {'numba ' + str(status['version']) if status['available'] else 'absent'}"
        + (f" (warmed {n_warmed} kernel modules,"
           f" cache {status['cache_dir']})" if status["available"] else
           f" ({status['reason']}) — delta-numba runs as its NumPy twin")
    )

    backend_names = suite_backend_names(suite)
    reference = SUITE_REFERENCE[suite]
    results = {
        name: bench_graph(name, builder, k, args.repeats, backend_names, reference)
        for name, (builder, k) in SUITES[suite].items()
    }
    payload = {
        "meta": {
            "suite": suite,
            "python": platform.python_version(),
            "numpy": np.__version__,
            "machine": platform.machine(),
            "timestamp": time.strftime("%Y-%m-%dT%H:%M:%SZ", time.gmtime()),
            "gated_backend": GATED_BACKEND,
            "native_backend": NATIVE_BACKEND,
            "reference_backend": reference,
            "native": status,
        },
        "results": results,
    }
    args.out.write_text(json.dumps(payload, indent=2) + "\n")
    print(f"wrote {args.out}")

    if args.check is not None:
        return check_baseline(
            results, args.check, args.tolerance, args.min_speedup_native
        )
    return 0


if __name__ == "__main__":
    sys.exit(main())
