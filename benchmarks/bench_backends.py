"""Benchmark the pluggable multi-source shortest-path backends.

Times every registered backend (``repro.shortest_paths.backends``) on
generator graphs, verifies they agree bit-for-bit before any number is
recorded, and writes ``BENCH_backends.json`` — the perf-trajectory
record the CI bench-smoke job uploads as an artifact.

Usage::

    PYTHONPATH=src python benchmarks/bench_backends.py             # full suite
    PYTHONPATH=src python benchmarks/bench_backends.py --quick     # tiny CI suite
    PYTHONPATH=src python benchmarks/bench_backends.py --quick \
        --check benchmarks/BENCH_backends_baseline.json            # regression gate

The regression gate compares the *speedup ratio* of the vectorised
``delta-numpy`` backend over the ``dijkstra`` reference against the
committed baseline: ratios are far more stable across machines than
absolute seconds.  The gate fails (exit code 1) when the measured
speedup drops below ``(1 - tolerance)`` times the baseline speedup
(default tolerance 20%).
"""

from __future__ import annotations

import argparse
import json
import platform
import sys
import time
from pathlib import Path

import numpy as np

from repro.graph.connectivity import largest_component_vertices
from repro.graph.generators import erdos_renyi_graph, grid_graph, rmat_graph
from repro.graph.weights import assign_uniform_weights
from repro.shortest_paths.backends import (
    available_backends,
    compute_multisource,
    verify_backends_agree,
)

#: the backend whose speedup is gated, and its reference
GATED_BACKEND = "delta-numpy"
REFERENCE_BACKEND = "dijkstra"

#: name -> (builder, seed count); the full suite centres on the
#: ~100K-edge generator graphs named in the perf target
SUITES = {
    "full": {
        "rmat-100k-w100": (
            lambda: assign_uniform_weights(
                rmat_graph(14, 7, seed=1), (1, 100), seed=2
            ),
            30,
        ),
        "er-100k-w100": (
            lambda: assign_uniform_weights(
                erdos_renyi_graph(30_000, 100_000, seed=3), (1, 100), seed=4
            ),
            30,
        ),
        "grid-100k-unit": (lambda: grid_graph(200, 250), 20),
    },
    "quick": {
        "rmat-6k-w100": (
            lambda: assign_uniform_weights(
                rmat_graph(10, 6, seed=1), (1, 100), seed=2
            ),
            10,
        ),
        "er-6k-w100": (
            lambda: assign_uniform_weights(
                erdos_renyi_graph(2_000, 6_000, seed=3), (1, 100), seed=4
            ),
            10,
        ),
        "grid-5k-unit": (lambda: grid_graph(50, 50), 8),
    },
}


def pick_seeds(graph, k: int, rng_seed: int = 1) -> np.ndarray:
    """``k`` distinct seeds from the largest component."""
    comp = largest_component_vertices(graph)
    rng = np.random.default_rng(rng_seed)
    return np.sort(rng.choice(comp, size=min(k, comp.size), replace=False))


def bench_graph(name: str, builder, k: int, repeats: int) -> dict:
    """Time every backend on one graph; returns the per-graph record."""
    graph = builder()
    seeds = pick_seeds(graph, k)
    verify_backends_agree(graph, seeds)  # never record numbers for wrong answers

    backends: dict[str, dict] = {}
    for backend in available_backends():
        best = min(
            compute_multisource(graph, seeds, backend=backend).elapsed_s
            for _ in range(repeats)
        )
        backends[backend] = {"seconds": round(best, 6)}
    ref = backends[REFERENCE_BACKEND]["seconds"]
    for record in backends.values():
        record["speedup"] = round(ref / record["seconds"], 3)

    print(f"{name}: |V|={graph.n_vertices} |E|={graph.n_edges} |S|={seeds.size}")
    for backend, record in backends.items():
        print(
            f"  {backend:14s} {record['seconds'] * 1e3:9.2f} ms"
            f"  {record['speedup']:6.2f}x vs {REFERENCE_BACKEND}"
        )
    return {
        "n_vertices": graph.n_vertices,
        "n_edges": graph.n_edges,
        "n_seeds": int(seeds.size),
        "backends": backends,
    }


def check_baseline(results: dict, baseline_path: Path, tolerance: float) -> int:
    """Gate: fail when the vectorised backend's speedup regressed."""
    baseline = json.loads(baseline_path.read_text())
    failures = []
    for name, record in results.items():
        base_graph = baseline.get("results", {}).get(name)
        if base_graph is None:
            print(f"[check] {name}: no baseline entry, skipping")
            continue
        base = base_graph["backends"][GATED_BACKEND]["speedup"]
        measured = record["backends"][GATED_BACKEND]["speedup"]
        floor = base * (1.0 - tolerance)
        status = "OK" if measured >= floor else "REGRESSED"
        print(
            f"[check] {name}: {GATED_BACKEND} speedup {measured:.2f}x "
            f"(baseline {base:.2f}x, floor {floor:.2f}x) {status}"
        )
        if measured < floor:
            failures.append(name)
    if failures:
        print(f"[check] FAILED: {GATED_BACKEND} regressed on {failures}")
        return 1
    print("[check] passed")
    return 0


def main(argv: list[str] | None = None) -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument(
        "--quick", action="store_true", help="tiny inputs (CI smoke job)"
    )
    parser.add_argument(
        "--out", type=Path, default=Path("BENCH_backends.json"),
        help="output JSON path (default: ./BENCH_backends.json)",
    )
    parser.add_argument(
        "--repeats", type=int, default=3, help="timing repeats, best-of"
    )
    parser.add_argument(
        "--check", type=Path, default=None,
        help="baseline JSON; exit 1 if the vectorised backend regressed",
    )
    parser.add_argument(
        "--tolerance", type=float, default=0.20,
        help="allowed fractional speedup regression vs baseline (default 0.20)",
    )
    args = parser.parse_args(argv)

    suite = "quick" if args.quick else "full"
    results = {
        name: bench_graph(name, builder, k, args.repeats)
        for name, (builder, k) in SUITES[suite].items()
    }
    payload = {
        "meta": {
            "suite": suite,
            "python": platform.python_version(),
            "numpy": np.__version__,
            "machine": platform.machine(),
            "timestamp": time.strftime("%Y-%m-%dT%H:%M:%SZ", time.gmtime()),
            "gated_backend": GATED_BACKEND,
            "reference_backend": REFERENCE_BACKEND,
        },
        "results": results,
    }
    args.out.write_text(json.dumps(payload, indent=2) + "\n")
    print(f"wrote {args.out}")

    if args.check is not None:
        return check_baseline(results, args.check, args.tolerance)
    return 0


if __name__ == "__main__":
    sys.exit(main())
