"""Shared benchmark fixtures.

Benchmarks run the same workloads as the experiment harness; dataset
construction is memoised by :func:`repro.harness.datasets.load_dataset`,
so setup cost is paid once per session (the paper likewise excludes
graph loading from its timings).

Paper-relevant metrics that are *not* wall-clock (simulated parallel
time, message counts, memory bytes, approximation ratios) are attached
to each benchmark's ``extra_info`` so the ``--benchmark-only`` report
doubles as the reproduction record.
"""

from __future__ import annotations

import pytest

from repro.harness.datasets import load_dataset
from repro.native import warmup
from repro.seeds.selection import select_seeds


@pytest.fixture(scope="session", autouse=True)
def _warm_native_kernels():
    """Compile every numba kernel before any benchmark runs, so JIT
    compilation never lands inside a timing column (no-op without
    numba; the cache dir is pinned by ``repro.native`` so reruns
    reload compiled artifacts)."""
    warmup()


@pytest.fixture(scope="session")
def seeds_cache():
    """Memoised BFS-level seed sets keyed by (dataset, k)."""
    cache: dict[tuple[str, int], object] = {}

    def get(dataset: str, k: int):
        key = (dataset, k)
        if key not in cache:
            cache[key] = select_seeds(load_dataset(dataset), k, "bfs-level", seed=1)
        return cache[key]

    return get
