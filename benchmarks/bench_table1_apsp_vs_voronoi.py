"""Table I bench — APSP vs Voronoi-cell computation (single thread).

Expected shape (paper Table I): APSP wall time grows ~linearly with the
seed count while the Voronoi-cell sweep stays flat, so the APSP/VC gap
widens by roughly the seed-count ratio.
"""

from __future__ import annotations

import pytest

from repro.harness.datasets import load_dataset
from repro.shortest_paths.apsp import seed_pairs_apsp
from repro.shortest_paths.voronoi import compute_voronoi_cells

DATASETS = ["LVJ", "PTN"]
SEED_COUNTS = [10, 30, 100]


@pytest.mark.parametrize("dataset", DATASETS)
@pytest.mark.parametrize("k", SEED_COUNTS)
def test_apsp(benchmark, seeds_cache, dataset, k):
    graph = load_dataset(dataset)
    seeds = seeds_cache(dataset, k)
    benchmark.group = f"table1 {dataset} |S|={k}"
    benchmark.extra_info["kernel"] = "APSP (KMB step 1)"
    benchmark.pedantic(seed_pairs_apsp, args=(graph, seeds), rounds=2, iterations=1)


@pytest.mark.parametrize("dataset", DATASETS)
@pytest.mark.parametrize("k", SEED_COUNTS)
def test_voronoi_cells(benchmark, seeds_cache, dataset, k):
    graph = load_dataset(dataset)
    seeds = seeds_cache(dataset, k)
    benchmark.group = f"table1 {dataset} |S|={k}"
    benchmark.extra_info["kernel"] = "Voronoi cells (Mehlhorn/ours)"
    benchmark.pedantic(
        compute_voronoi_cells, args=(graph, seeds), rounds=2, iterations=1
    )
