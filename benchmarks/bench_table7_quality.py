"""Table VII bench — approximation quality vs the exact optimum.

The timed body is our solver; ``extra_info`` carries the Table VII
cells (ratio, % error, Dmin source).  Shape assertions: every ratio in
[1, 2] (the KMB/Mehlhorn bound), matching the paper's 1.0527 average.
"""

from __future__ import annotations

import pytest

from repro.baselines.exact import MAX_EXACT_SEEDS, exact_steiner_tree
from repro.baselines.refine import refined_reference_tree
from repro.core.config import SolverConfig
from repro.core.solver import DistributedSteinerSolver
from repro.harness.datasets import load_dataset

CASES = [("LVJ", 10), ("PTN", 10), ("MCO", 10), ("CTS", 10),
         ("MCO", 30), ("CTS", 30)]


@pytest.mark.parametrize("dataset,k", CASES)
def test_quality(benchmark, seeds_cache, dataset, k):
    graph = load_dataset(dataset)
    seeds = seeds_cache(dataset, k)
    solver = DistributedSteinerSolver(graph, SolverConfig(n_ranks=16))

    result = benchmark.pedantic(solver.solve, args=(seeds,), rounds=1, iterations=1)

    if k <= MAX_EXACT_SEEDS:
        ref = exact_steiner_tree(graph, seeds)
        source = "exact"
        dmin = ref.total_distance
    else:
        ref = refined_reference_tree(graph, seeds, passes=1, n_candidates=16)
        source = "reference"
        dmin = min(ref.total_distance, result.total_distance)

    ratio = result.total_distance / dmin
    benchmark.group = "table7 quality"
    benchmark.extra_info["dataset"] = dataset
    benchmark.extra_info["k"] = k
    benchmark.extra_info["dmin_source"] = source
    benchmark.extra_info["ratio"] = round(ratio, 4)
    benchmark.extra_info["error_pct"] = round((ratio - 1) * 100, 2)
    assert 1.0 <= ratio <= 2.0
