"""Table V bench — seed-selection strategies on the LVJ stand-in.

``extra_info`` records the Table V columns (time is the benchmark
itself; D(GS) and |ES| are attached).  Shape: proximate trees are far
cheaper/smaller than every other strategy.
"""

from __future__ import annotations

import pytest

from repro.core.config import SolverConfig
from repro.core.solver import DistributedSteinerSolver
from repro.harness.datasets import load_dataset
from repro.seeds.selection import SeedStrategy, select_seeds

STRATEGIES = [s.value for s in SeedStrategy]
K = 30  # paper |S|=100 scaled


@pytest.mark.parametrize("strategy", STRATEGIES)
def test_seed_strategy(benchmark, strategy):
    graph = load_dataset("LVJ")
    seeds = select_seeds(graph, K, strategy, seed=1)
    solver = DistributedSteinerSolver(graph, SolverConfig(n_ranks=16))

    result = benchmark.pedantic(solver.solve, args=(seeds,), rounds=1, iterations=1)

    benchmark.group = "table5 LVJ |S|=30"
    benchmark.extra_info["strategy"] = strategy
    benchmark.extra_info["total_distance"] = result.total_distance
    benchmark.extra_info["n_tree_edges"] = result.n_edges


def test_proximate_is_degenerate_case():
    """Table V's headline: proximate trees are much smaller."""
    graph = load_dataset("LVJ")
    solver = DistributedSteinerSolver(graph, SolverConfig(n_ranks=16))
    distances = {}
    for strategy in (SeedStrategy.BFS_LEVEL, SeedStrategy.PROXIMATE):
        seeds = select_seeds(graph, K, strategy, seed=1)
        distances[strategy] = solver.solve(seeds).total_distance
    assert distances[SeedStrategy.PROXIMATE] < distances[SeedStrategy.BFS_LEVEL]
