"""Ablation benches for the design choices DESIGN.md calls out.

* async vs BSP execution (paper §IV's engine choice);
* delegate partitioning on/off (HavoqGT vertex-cut);
* sequential MST kernel choice + Borůvka parallelism collapse (§III).
"""

from __future__ import annotations

import pytest

from repro.core.config import SolverConfig
from repro.core.distance_graph import build_distance_graph
from repro.core.solver import DistributedSteinerSolver
from repro.harness.datasets import load_dataset
from repro.mst.boruvka import boruvka_rounds
from repro.mst.kruskal import kruskal_mst
from repro.mst.prim import prim_mst
from repro.seeds.selection import select_seeds
from repro.shortest_paths.voronoi import compute_voronoi_cells

K = 30


@pytest.mark.parametrize("engine", ["async-heap", "bsp", "bsp-batched"])
def test_async_vs_bsp(benchmark, seeds_cache, engine):
    graph = load_dataset("LVJ")
    seeds = seeds_cache("LVJ", K)
    solver = DistributedSteinerSolver(
        graph, SolverConfig(n_ranks=16, engine=engine)
    )
    result = benchmark.pedantic(solver.solve, args=(seeds,), rounds=1, iterations=1)
    benchmark.group = "ablation async-vs-bsp LVJ"
    benchmark.extra_info["engine"] = engine
    benchmark.extra_info["sim_time_s"] = result.sim_time()
    benchmark.extra_info["messages"] = result.message_count()


@pytest.mark.parametrize("delegates", ["off", "on"])
def test_delegate_partitioning(benchmark, seeds_cache, delegates):
    graph = load_dataset("WDC")
    seeds = seeds_cache("WDC", K)
    threshold = None if delegates == "off" else max(64, int(graph.avg_degree * 8))
    solver = DistributedSteinerSolver(
        graph, SolverConfig(n_ranks=16, delegate_threshold=threshold)
    )
    result = benchmark.pedantic(solver.solve, args=(seeds,), rounds=1, iterations=1)
    benchmark.group = "ablation delegates WDC"
    benchmark.extra_info["delegates"] = delegates
    benchmark.extra_info["arc_imbalance"] = round(
        solver.partition.load_imbalance(), 3
    )
    benchmark.extra_info["sim_time_s"] = result.sim_time()


@pytest.fixture(scope="module")
def distance_graph_instance():
    graph = load_dataset("LVJ")
    seeds = select_seeds(graph, 100, "bfs-level", seed=1)
    vd = compute_voronoi_cells(graph, seeds)
    dg = build_distance_graph(graph, seeds, vd.src, vd.dist)
    si, ti = dg.seed_indices()
    return len(seeds), si, ti, dg.dprime


@pytest.mark.parametrize(
    "kernel", [prim_mst, kruskal_mst, lambda *a: boruvka_rounds(*a)[0]],
    ids=["prim", "kruskal", "boruvka"],
)
def test_mst_kernels_on_distance_graph(benchmark, distance_graph_instance, kernel):
    k, si, ti, w = distance_graph_instance
    benchmark.group = "ablation MST kernels on G'1"
    idx = benchmark.pedantic(kernel, args=(k, si, ti, w), rounds=3, iterations=1)
    benchmark.extra_info["n_distance_edges"] = int(si.size)
    benchmark.extra_info["mst_weight"] = int(w[idx].sum())


def test_boruvka_parallelism_collapse(benchmark, distance_graph_instance):
    k, si, ti, w = distance_graph_instance
    benchmark.group = "ablation MST kernels on G'1"
    _, rounds = benchmark.pedantic(
        boruvka_rounds, args=(k, si, ti, w), rounds=1, iterations=1
    )
    benchmark.extra_info["components_per_round"] = rounds
    # the paper's argument: parallelism collapses geometrically
    assert rounds == sorted(rounds, reverse=True)
