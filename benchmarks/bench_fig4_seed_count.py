"""Fig. 4 bench — runtime vs seed-vertex count at fixed ranks.

Expected shape: the async phases' simulated time is roughly flat (or
*drops* at the largest seed count — denser sources converge faster),
while the collective/MST phases grow with C(|S|, 2).
"""

from __future__ import annotations

import pytest

from repro.core.config import SolverConfig
from repro.core.solver import DistributedSteinerSolver
from repro.harness.datasets import load_dataset

DATASETS = ["PTN", "LVJ", "UKW", "WDC"]
SEED_COUNTS = [10, 30, 100, 300]


@pytest.mark.parametrize("dataset", DATASETS)
@pytest.mark.parametrize("k", SEED_COUNTS)
def test_seed_count_sweep(benchmark, seeds_cache, dataset, k):
    graph = load_dataset(dataset)
    if k * 3 > graph.n_vertices:
        pytest.skip("stand-in too small for this seed count")
    seeds = seeds_cache(dataset, k)
    solver = DistributedSteinerSolver(graph, SolverConfig(n_ranks=16))

    result = benchmark.pedantic(solver.solve, args=(seeds,), rounds=1, iterations=1)

    benchmark.group = f"fig4 {dataset}"
    benchmark.extra_info["k"] = k
    benchmark.extra_info["sim_time_s"] = result.sim_time()
    benchmark.extra_info["collective_sim_time_s"] = result.phase_time(
        "Global Min Dist. Edge"
    ) + result.phase_time("Global Edge Pruning")
    benchmark.extra_info["n_tree_edges"] = result.n_edges
