"""Fig. 6 bench — message counts under FIFO vs priority queues.

The timed body is the Voronoi-cell phase alone (the message-dominant
phase); ``extra_info`` carries the per-discipline message counts and the
reduction factor — the paper's 4.9x-22.1x claim, shape-asserted.
"""

from __future__ import annotations

import pytest

from repro.core.voronoi_visitor import VoronoiProgram
from repro.harness.datasets import load_dataset
from repro.runtime.cost_model import MachineModel
from repro.runtime.engine import AsyncEngine
from repro.runtime.partition import block_partition

DATASETS = ["LVJ", "FRS", "UKW"]
K = 30


def run_voronoi(graph, seeds, discipline):
    part = block_partition(graph, 16)
    engine = AsyncEngine(part, MachineModel(), discipline)
    prog = VoronoiProgram(part)
    return engine.run_phase("vc", prog, list(prog.initial_messages(seeds)))


@pytest.mark.parametrize("dataset", DATASETS)
def test_message_reduction(benchmark, seeds_cache, dataset):
    graph = load_dataset(dataset)
    seeds = seeds_cache(dataset, K)

    fifo_stats = run_voronoi(graph, seeds, "fifo")
    prio_stats = benchmark.pedantic(
        run_voronoi, args=(graph, seeds, "priority"), rounds=1, iterations=1
    )

    reduction = fifo_stats.n_messages / max(prio_stats.n_messages, 1)
    benchmark.group = "fig6 message counts"
    benchmark.extra_info["fifo_messages"] = fifo_stats.n_messages
    benchmark.extra_info["priority_messages"] = prio_stats.n_messages
    benchmark.extra_info["reduction"] = round(reduction, 2)
    assert reduction >= 1.0
