"""Table IV bench — output-tree edge counts across all eight datasets.

The benchmark times one full solve per dataset; ``extra_info`` records
``|ES|`` (the Table IV cell) and the graph/tree size ratio, asserting
the paper's "orders of magnitude smaller" claim.
"""

from __future__ import annotations

import pytest

from repro.core.config import SolverConfig
from repro.core.solver import DistributedSteinerSolver
from repro.harness.datasets import DATASETS, load_dataset

K = 30  # paper |S|=100 scaled


@pytest.mark.parametrize("dataset", list(DATASETS))
def test_tree_edge_counts(benchmark, seeds_cache, dataset):
    graph = load_dataset(dataset)
    seeds = seeds_cache(dataset, K)
    solver = DistributedSteinerSolver(graph, SolverConfig(n_ranks=8))

    result = benchmark.pedantic(solver.solve, args=(seeds,), rounds=1, iterations=1)

    benchmark.group = "table4 |S|=30"
    benchmark.extra_info["n_tree_edges"] = result.n_edges
    benchmark.extra_info["graph_edges"] = graph.n_edges
    benchmark.extra_info["shrink_factor"] = round(
        graph.n_edges / max(result.n_edges, 1), 1
    )
    assert result.n_edges < graph.n_edges / 2
