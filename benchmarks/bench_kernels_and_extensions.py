"""Benches for the kernel ablation, chunked collectives, message
aggregation, and the near-shortest-path exploration primitive."""

from __future__ import annotations

import pytest

from repro.core.config import SolverConfig
from repro.core.solver import DistributedSteinerSolver
from repro.harness.datasets import load_dataset
from repro.seeds.selection import select_seeds
from repro.shortest_paths.multisource import (
    compute_voronoi_cells_delta_stepping,
    compute_voronoi_cells_spfa,
)
from repro.shortest_paths.near_shortest import near_shortest_path_edges
from repro.shortest_paths.voronoi import compute_voronoi_cells

K = 30

KERNELS = {
    "dijkstra-order": compute_voronoi_cells,
    "spfa": compute_voronoi_cells_spfa,
    "delta-stepping": compute_voronoi_cells_delta_stepping,
}


@pytest.mark.parametrize("kernel", list(KERNELS))
def test_multisource_kernels(benchmark, seeds_cache, kernel):
    """§III's kernel comparison: Dijkstra-order vs SPFA vs Δ-stepping."""
    graph = load_dataset("LVJ")
    seeds = seeds_cache("LVJ", K)
    benchmark.group = "ablation kernels LVJ |S|=30"
    benchmark.extra_info["kernel"] = kernel
    benchmark.pedantic(KERNELS[kernel], args=(graph, seeds), rounds=2, iterations=1)


@pytest.mark.parametrize("chunk", [None, 500, 50])
def test_chunked_collectives(benchmark, seeds_cache, chunk):
    """§V-F: chunked EN collectives trade runtime for bounded buffers."""
    graph = load_dataset("LVJ")
    seeds = seeds_cache("LVJ", 100)
    solver = DistributedSteinerSolver(
        graph, SolverConfig(n_ranks=16, collective_chunk_elements=chunk)
    )
    result = benchmark.pedantic(solver.solve, args=(seeds,), rounds=1, iterations=1)
    benchmark.group = "ablation chunked collectives LVJ |S|=100"
    benchmark.extra_info["chunk"] = chunk or "single-shot"
    benchmark.extra_info["collective_sim_time_s"] = result.phase_time(
        "Global Min Dist. Edge"
    ) + result.phase_time("Global Edge Pruning")
    benchmark.extra_info["en_buffer_bytes"] = result.memory.en_buffer_bytes


@pytest.mark.parametrize("aggregate", [False, True])
def test_message_aggregation(benchmark, seeds_cache, aggregate):
    """HavoqGT-style per-destination message batching."""
    graph = load_dataset("WDC")
    seeds = seeds_cache("WDC", K)
    solver = DistributedSteinerSolver(
        graph, SolverConfig(n_ranks=16, aggregate_remote_messages=aggregate)
    )
    result = benchmark.pedantic(solver.solve, args=(seeds,), rounds=1, iterations=1)
    benchmark.group = "ablation aggregation WDC |S|=30"
    benchmark.extra_info["aggregate"] = aggregate
    benchmark.extra_info["sim_time_s"] = result.sim_time()


@pytest.mark.parametrize("epsilon", [0.0, 0.1, 0.5])
def test_near_shortest_exploration(benchmark, epsilon):
    """|S|=2 exploration primitive from the paper's introduction."""
    graph = load_dataset("LVJ")
    seeds = select_seeds(graph, 2, "eccentric", seed=4)
    s, t = int(seeds[0]), int(seeds[1])
    result = benchmark.pedantic(
        near_shortest_path_edges, args=(graph, s, t, epsilon),
        rounds=3, iterations=1,
    )
    benchmark.group = "near-shortest |S|=2 LVJ"
    benchmark.extra_info["epsilon"] = epsilon
    benchmark.extra_info["n_edges"] = result.n_edges


@pytest.mark.parametrize("backend", ["heap", "scipy"])
def test_voronoi_backends(benchmark, seeds_cache, backend):
    """Pure-Python heap sweep vs SciPy compiled multi-source Dijkstra
    (bit-identical output; the speedup grows with graph size)."""
    from repro.shortest_paths.scipy_backend import compute_voronoi_cells_scipy
    from repro.shortest_paths.voronoi import (
        canonicalize_predecessors,
        compute_voronoi_cells,
    )

    graph = load_dataset("WDC")
    seeds = seeds_cache("WDC", K)

    def heap_run():
        vd = compute_voronoi_cells(graph, seeds)
        vd.pred = canonicalize_predecessors(graph, vd.src, vd.dist)
        return vd

    fn = heap_run if backend == "heap" else (
        lambda: compute_voronoi_cells_scipy(graph, seeds)
    )
    benchmark.group = "voronoi backend WDC |S|=30"
    benchmark.extra_info["backend"] = backend
    benchmark.pedantic(fn, rounds=2, iterations=1)
