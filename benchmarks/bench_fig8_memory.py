"""Fig. 8 bench — cluster-wide peak memory accounting.

``extra_info`` carries the Fig. 8 stacked-bar values (graph bytes vs
application-runtime bytes).  Shape assertions: runtime state grows
superlinearly with the seed count (the C(|S|,2) replicated buffers);
the graph share dominates only on the larger datasets.
"""

from __future__ import annotations

import pytest

from repro.core.config import SolverConfig
from repro.core.solver import DistributedSteinerSolver
from repro.harness.datasets import load_dataset

CASES = [("LVJ", 100), ("LVJ", 300), ("CLW", 100), ("CLW", 300),
         ("WDC", 100), ("WDC", 300)]


@pytest.mark.parametrize("dataset,k", CASES)
def test_memory_breakdown(benchmark, seeds_cache, dataset, k):
    graph = load_dataset(dataset)
    if k * 3 > graph.n_vertices:
        pytest.skip("stand-in too small for this seed count")
    seeds = seeds_cache(dataset, k)
    solver = DistributedSteinerSolver(graph, SolverConfig(n_ranks=16))

    result = benchmark.pedantic(solver.solve, args=(seeds,), rounds=1, iterations=1)

    mem = result.memory
    benchmark.group = f"fig8 {dataset}"
    benchmark.extra_info["k"] = k
    benchmark.extra_info["graph_bytes"] = mem.graph_bytes
    benchmark.extra_info["runtime_bytes"] = mem.runtime_bytes
    benchmark.extra_info["total_bytes"] = mem.total_bytes
    assert mem.total_bytes == mem.graph_bytes + mem.runtime_bytes


def test_runtime_memory_grows_quadratically(seeds_cache):
    graph = load_dataset("LVJ")
    solver = DistributedSteinerSolver(graph, SolverConfig(n_ranks=16))
    small = solver.solve(seeds_cache("LVJ", 100)).memory
    large = solver.solve(seeds_cache("LVJ", 300)).memory
    # C(300,2)/C(100,2) ~ 9.06x on the replicated buffers
    assert large.en_buffer_bytes > 8 * small.en_buffer_bytes
