"""Fig. 5 bench — FIFO vs priority queue runtime.

Expected shape: priority-queue sim_time <= FIFO sim_time on every
dataset, with the gap concentrated in the Voronoi Cell phase; output
trees identical (asserted).
"""

from __future__ import annotations

import numpy as np
import pytest

from repro.core.config import SolverConfig
from repro.core.solver import DistributedSteinerSolver
from repro.harness.datasets import load_dataset

DATASETS = ["LVJ", "FRS", "UKW"]
K = 30  # paper |S|=100 scaled


@pytest.mark.parametrize("dataset", DATASETS)
@pytest.mark.parametrize("discipline", ["fifo", "priority"])
def test_queue_discipline(benchmark, seeds_cache, dataset, discipline):
    graph = load_dataset(dataset)
    seeds = seeds_cache(dataset, K)
    solver = DistributedSteinerSolver(
        graph, SolverConfig(n_ranks=16, discipline=discipline)
    )

    result = benchmark.pedantic(solver.solve, args=(seeds,), rounds=1, iterations=1)

    benchmark.group = f"fig5 {dataset}"
    benchmark.extra_info["discipline"] = discipline
    benchmark.extra_info["sim_time_s"] = result.sim_time()
    benchmark.extra_info["voronoi_sim_time_s"] = result.phase_time("Voronoi Cell")
    benchmark.extra_info["messages"] = result.message_count()


def test_priority_beats_fifo_end_to_end(seeds_cache):
    """Direct shape assertion for the whole Fig. 5 claim."""
    for dataset in DATASETS:
        graph = load_dataset(dataset)
        seeds = seeds_cache(dataset, K)
        fifo = DistributedSteinerSolver(
            graph, SolverConfig(n_ranks=16, discipline="fifo")
        ).solve(seeds)
        prio = DistributedSteinerSolver(
            graph, SolverConfig(n_ranks=16, discipline="priority")
        ).solve(seeds)
        assert np.array_equal(fifo.edges, prio.edges)
        assert prio.sim_time() <= fifo.sim_time()
