"""Benchmark the solver service: batching throughput and cache hits.

Drives a :class:`repro.serve.SolverService` with a fixed workload of
distinct solve requests against one warm graph and records, per
instance:

* **sequential** — requests answered one at a time (batching disabled):
  the baseline req/s and per-request latency distribution (p50/p99);
* **batched** — the same requests submitted concurrently into the
  batching window, so compatible requests coalesce into fused
  multi-source sweeps; before any number is recorded the batched trees
  are verified **bit-identical** to the sequential ones;
* **cache** — a repeated request served from the result cache: the
  cold/warm speedup (a hit skips the sweep and phases entirely).

Writes ``BENCH_serve.json`` — the perf-trajectory record the CI
bench-smoke job uploads as an artifact.

Usage::

    PYTHONPATH=src python benchmarks/bench_serve.py             # full suite
    PYTHONPATH=src python benchmarks/bench_serve.py --quick     # tiny CI suite
    PYTHONPATH=src python benchmarks/bench_serve.py --quick \
        --check benchmarks/BENCH_serve_baseline.json            # regression gate

The regression gate compares *ratios* — the batched-over-sequential
throughput ratio and the cache-hit speedup — against the committed
baseline, because ratios are far more stable across machines than
absolute req/s.  The gate fails (exit 1) when a measured ratio drops
below ``(1 - tolerance)`` times its baseline value (default tolerance
20%), or below the absolute floors given with ``--min-batch-ratio`` /
``--min-cache-speedup``.

Determinism: fixed generator seeds, fixed RNG for seed-set selection,
and a fixed request mix — two bench logs differ only in the wall-clock
columns.
"""

from __future__ import annotations

import argparse
import json
import platform
import sys
import time
from pathlib import Path

import numpy as np

from repro.graph.connectivity import largest_component_vertices
from repro.graph.generators import erdos_renyi_graph, grid_graph, rmat_graph
from repro.graph.weights import assign_uniform_weights
from repro.serve import SolverService

#: ratio names the check gate understands
BATCH_RATIO = "batched_vs_sequential"
CACHE_RATIO = "cache_hit_speedup"

#: name -> (builder, n_requests, seeds_per_request)
SUITES = {
    "full": {
        "rmat-100k-w100": (
            lambda: assign_uniform_weights(
                rmat_graph(14, 7, seed=1), (1, 100), seed=2
            ),
            8,
            20,
        ),
        "er-100k-w100": (
            lambda: assign_uniform_weights(
                erdos_renyi_graph(30_000, 100_000, seed=3), (1, 100), seed=4
            ),
            8,
            20,
        ),
        "grid-50k-unit": (lambda: grid_graph(200, 250), 8, 15),
    },
    "quick": {
        "rmat-6k-w100": (
            lambda: assign_uniform_weights(
                rmat_graph(10, 6, seed=1), (1, 100), seed=2
            ),
            6,
            10,
        ),
        "grid-2.5k-unit": (lambda: grid_graph(50, 50), 6, 8),
    },
}


def build_requests(graph, n_requests: int, k: int, rng_seed: int = 1):
    """``n_requests`` distinct seed sets from the largest component."""
    comp = largest_component_vertices(graph)
    rng = np.random.default_rng(rng_seed)
    return [
        np.sort(rng.choice(comp, size=min(k, comp.size), replace=False))
        for _ in range(n_requests)
    ]


def run_sequential(graph, seed_sets, repeats: int):
    """One request at a time, batching and caching off.  Returns
    ``(results, best_elapsed, latencies)``."""
    best = None
    results = None
    latencies = None
    for _ in range(repeats):
        svc = SolverService(cache=False, batch_window_s=0.0, max_batch=1)
        svc.add_graph("bench", graph)
        lats = []
        out = []
        t0 = time.perf_counter()
        for i, seeds in enumerate(seed_sets):
            t1 = time.perf_counter()
            out.append(svc.solve("bench", seeds, request_id=f"seq-{i}"))
            lats.append(time.perf_counter() - t1)
        elapsed = time.perf_counter() - t0
        svc.close()
        if best is None or elapsed < best:
            best, results, latencies = elapsed, out, lats
    return results, best, latencies


def run_batched(graph, seed_sets, repeats: int):
    """All requests submitted into one batching window; latency is
    submit-to-resolution per request."""
    best = None
    results = None
    latencies = None
    coalesced = fused = 0
    for _ in range(repeats):
        svc = SolverService(
            cache=False,
            batch_window_s=0.01,
            max_batch=max(2, len(seed_sets)),
        )
        svc.add_graph("bench", graph)
        done_at = {}

        def on_done(pending, _clock=time.perf_counter, _done=done_at):
            _done[pending.request.id] = _clock()

        t0 = time.perf_counter()
        pendings = [
            svc.submit(
                {"id": f"bat-{i}", "graph": "bench", "seeds": [int(s) for s in seeds]},
                on_done=on_done,
            )
            for i, seeds in enumerate(seed_sets)
        ]
        out = [p.wait(600) for p in pendings]
        elapsed = time.perf_counter() - t0
        lats = [done_at[f"bat-{i}"] - t0 for i in range(len(seed_sets))]
        coalesced, fused = svc.counters.coalesced, svc.counters.fused_sweeps
        svc.close()
        if best is None or elapsed < best:
            best, results, latencies = elapsed, out, lats
    return results, best, latencies, coalesced, fused


def run_cache(graph, seeds, repeats: int):
    """Cold solve vs cached re-solve of the identical request."""
    best_cold = best_warm = None
    for _ in range(repeats):
        svc = SolverService(batch_window_s=0.0)
        svc.add_graph("bench", graph)
        t0 = time.perf_counter()
        cold_res = svc.solve("bench", seeds, request_id="cold")
        cold = time.perf_counter() - t0
        t0 = time.perf_counter()
        warm_res = svc.solve("bench", seeds, request_id="warm")
        warm = time.perf_counter() - t0
        svc.close()
        assert cold_res.provenance["cache_hit"] is False
        assert warm_res.provenance["cache_hit"] is True
        assert np.array_equal(cold_res.edges, warm_res.edges)
        best_cold = cold if best_cold is None else min(best_cold, cold)
        best_warm = warm if best_warm is None else min(best_warm, warm)
    return best_cold, best_warm


def percentile(values, q: float) -> float:
    return float(np.percentile(np.asarray(values), q))


def bench_instance(name: str, builder, n_requests: int, k: int, repeats: int):
    graph = builder()
    seed_sets = build_requests(graph, n_requests, k)

    seq_results, seq_s, seq_lats = run_sequential(graph, seed_sets, repeats)
    bat_results, bat_s, bat_lats, coalesced, fused = run_batched(
        graph, seed_sets, repeats
    )

    # never record numbers for wrong answers: batched == sequential,
    # bit for bit
    for i, (a, b) in enumerate(zip(seq_results, bat_results)):
        if not (
            np.array_equal(a.edges, b.edges)
            and a.total_distance == b.total_distance
        ):
            raise AssertionError(
                f"{name}: batched request {i} diverged from sequential"
            )
    if coalesced < 1:
        raise AssertionError(f"{name}: no requests were coalesced")

    cold_s, warm_s = run_cache(graph, seed_sets[0], repeats)

    record = {
        "n_vertices": graph.n_vertices,
        "n_edges": graph.n_edges,
        "n_requests": n_requests,
        "seeds_per_request": int(seed_sets[0].size),
        "sequential": {
            "seconds": round(seq_s, 6),
            "req_per_s": round(n_requests / seq_s, 3),
            "p50_ms": round(percentile(seq_lats, 50) * 1e3, 3),
            "p99_ms": round(percentile(seq_lats, 99) * 1e3, 3),
        },
        "batched": {
            "seconds": round(bat_s, 6),
            "req_per_s": round(n_requests / bat_s, 3),
            "p50_ms": round(percentile(bat_lats, 50) * 1e3, 3),
            "p99_ms": round(percentile(bat_lats, 99) * 1e3, 3),
            "coalesced": coalesced,
            "fused_sweeps": fused,
        },
        "cache": {
            "cold_ms": round(cold_s * 1e3, 3),
            "warm_ms": round(warm_s * 1e3, 3),
        },
        "ratios": {
            BATCH_RATIO: round(seq_s / bat_s, 3),
            CACHE_RATIO: round(cold_s / max(warm_s, 1e-9), 3),
        },
    }
    print(
        f"{name}: |V|={graph.n_vertices} |E|={graph.n_edges} "
        f"requests={n_requests}x{record['seeds_per_request']} seeds"
    )
    print(
        f"  sequential {record['sequential']['req_per_s']:8.1f} req/s  "
        f"p50={record['sequential']['p50_ms']:.2f}ms "
        f"p99={record['sequential']['p99_ms']:.2f}ms"
    )
    print(
        f"  batched    {record['batched']['req_per_s']:8.1f} req/s  "
        f"p50={record['batched']['p50_ms']:.2f}ms "
        f"p99={record['batched']['p99_ms']:.2f}ms  "
        f"({coalesced} coalesced, {fused} fused sweeps)"
    )
    print(
        f"  ratios     {BATCH_RATIO}={record['ratios'][BATCH_RATIO]:.2f}x  "
        f"{CACHE_RATIO}={record['ratios'][CACHE_RATIO]:.2f}x "
        f"(cold {record['cache']['cold_ms']:.2f}ms / "
        f"warm {record['cache']['warm_ms']:.2f}ms)"
    )
    return record


def check_baseline(
    results: dict,
    baseline_path: Path,
    tolerance: float,
    min_batch_ratio: float | None,
    min_cache_speedup: float | None,
) -> int:
    """Gate: fail when a gated ratio regressed below the floor."""
    baseline = json.loads(baseline_path.read_text())
    gates = ((BATCH_RATIO, min_batch_ratio), (CACHE_RATIO, min_cache_speedup))
    failures = []
    for name, record in results.items():
        base_graph = baseline.get("results", {}).get(name)
        if base_graph is None:
            print(f"[check] {name}: no baseline entry, skipping")
            continue
        for ratio_name, abs_floor in gates:
            base = base_graph["ratios"].get(ratio_name)
            if base is None:
                print(f"[check] {name}: no {ratio_name} baseline, skipping")
                continue
            measured = record["ratios"][ratio_name]
            floor = base * (1.0 - tolerance)
            if abs_floor is not None:
                floor = max(floor, abs_floor)
            status = "OK" if measured >= floor else "REGRESSED"
            print(
                f"[check] {name}: {ratio_name} {measured:.2f}x "
                f"(baseline {base:.2f}x, floor {floor:.2f}x) {status}"
            )
            if measured < floor:
                failures.append(f"{name}:{ratio_name}")
    if failures:
        print(f"[check] FAILED: regressions on {failures}")
        return 1
    print("[check] passed")
    return 0


def main(argv: list[str] | None = None) -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument(
        "--quick", action="store_true", help="tiny inputs (CI smoke job)"
    )
    parser.add_argument(
        "--out", type=Path, default=Path("BENCH_serve.json"),
        help="output JSON path (default: ./BENCH_serve.json)",
    )
    parser.add_argument(
        "--repeats", type=int, default=3, help="timing repeats, best-of"
    )
    parser.add_argument(
        "--check", type=Path, default=None,
        help="baseline JSON; exit 1 on a gated-ratio regression",
    )
    parser.add_argument(
        "--tolerance", type=float, default=0.20,
        help="allowed fractional ratio regression vs baseline (default 0.20)",
    )
    parser.add_argument(
        "--min-batch-ratio", type=float, default=None,
        help="absolute floor for batched-over-sequential throughput",
    )
    parser.add_argument(
        "--min-cache-speedup", type=float, default=None,
        help="absolute floor for the cache-hit speedup",
    )
    args = parser.parse_args(argv)

    suite = "quick" if args.quick else "full"
    results = {
        name: bench_instance(name, builder, n_req, k, args.repeats)
        for name, (builder, n_req, k) in SUITES[suite].items()
    }
    payload = {
        "meta": {
            "suite": suite,
            "python": platform.python_version(),
            "numpy": np.__version__,
            "machine": platform.machine(),
            "timestamp": time.strftime("%Y-%m-%dT%H:%M:%SZ", time.gmtime()),
            "gated_ratios": [BATCH_RATIO, CACHE_RATIO],
        },
        "results": results,
    }
    args.out.write_text(json.dumps(payload, indent=2) + "\n")
    print(f"wrote {args.out}")

    if args.check is not None:
        return check_baseline(
            results,
            args.check,
            args.tolerance,
            args.min_batch_ratio,
            args.min_cache_speedup,
        )
    return 0


if __name__ == "__main__":
    sys.exit(main())
