"""Fig. 3 bench — strong scaling of the distributed solver.

Wall-clock here is the *simulation's* cost (it grows slightly with rank
count because more remote messages are simulated); the paper's metric —
simulated parallel time per phase, and the speedup over the smallest
scale — is attached as ``extra_info`` per run.  Expected shape: sim_time
drops as ranks double; Voronoi Cell dominates.
"""

from __future__ import annotations

import pytest

from repro.core.config import SolverConfig
from repro.core.solver import DistributedSteinerSolver
from repro.harness.datasets import load_dataset

CASES = [
    ("FRS", 4), ("FRS", 8), ("FRS", 16),
    ("UKW", 4), ("UKW", 8), ("UKW", 16),
    ("CLW", 8), ("CLW", 16), ("CLW", 32),
    ("WDC", 8), ("WDC", 16), ("WDC", 32),
]
K = 30  # paper |S|=100 scaled


@pytest.mark.parametrize("dataset,ranks", CASES)
def test_strong_scaling(benchmark, seeds_cache, dataset, ranks):
    graph = load_dataset(dataset)
    seeds = seeds_cache(dataset, K)
    solver = DistributedSteinerSolver(graph, SolverConfig(n_ranks=ranks))

    result = benchmark.pedantic(solver.solve, args=(seeds,), rounds=1, iterations=1)

    benchmark.group = f"fig3 {dataset} |S|=30"
    benchmark.extra_info["ranks"] = ranks
    benchmark.extra_info["sim_time_s"] = result.sim_time()
    benchmark.extra_info["voronoi_sim_time_s"] = result.phase_time("Voronoi Cell")
    benchmark.extra_info["messages"] = result.message_count()
    # shape assertion: Voronoi dominates (paper: "majority of the runtime")
    assert result.phase_time("Voronoi Cell") == max(
        p.sim_time for p in result.phases
    )
