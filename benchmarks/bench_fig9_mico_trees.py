"""Fig. 9 bench — Steiner trees on the MiCo stand-in for three seed
sizes, recording tree composition (the data behind the visualisation)."""

from __future__ import annotations

import pytest

from repro.core.config import SolverConfig
from repro.core.solver import DistributedSteinerSolver
from repro.harness.datasets import load_dataset

SEED_COUNTS = [10, 30, 100]


@pytest.mark.parametrize("k", SEED_COUNTS)
def test_mico_trees(benchmark, seeds_cache, k):
    graph = load_dataset("MCO")
    seeds = seeds_cache("MCO", k)
    solver = DistributedSteinerSolver(graph, SolverConfig(n_ranks=8))

    result = benchmark.pedantic(solver.solve, args=(seeds,), rounds=1, iterations=1)

    benchmark.group = "fig9 MCO"
    benchmark.extra_info["k"] = k
    benchmark.extra_info["tree_vertices"] = int(result.vertices().size)
    benchmark.extra_info["steiner_vertices"] = int(result.steiner_vertices().size)
    benchmark.extra_info["n_edges"] = result.n_edges
    # a tree: |E| = |V| - 1, and it contains every seed
    assert result.n_edges == result.vertices().size - 1
