"""Table VI bench — runtime vs related work on the small graphs.

One benchmark per (dataset, solver): the exact/reference solver (S),
WWW (W), Mehlhorn (M), KMB, and ours (sequential reference wall time;
the simulated 16-rank time rides along in ``extra_info``).  Expected
shape: S >> {W, M, KMB, ours}; ours fastest or tied on the larger
graphs.
"""

from __future__ import annotations

import pytest

from repro.baselines.exact import exact_steiner_tree
from repro.baselines.kmb import kmb_steiner_tree
from repro.baselines.mehlhorn import mehlhorn_steiner_tree
from repro.baselines.www import www_steiner_tree
from repro.core.config import SolverConfig
from repro.core.sequential import sequential_steiner_tree
from repro.core.solver import DistributedSteinerSolver
from repro.harness.datasets import load_dataset

DATASETS = ["LVJ", "PTN", "MCO", "CTS"]
K = 30  # paper |S|=100 scaled

APPROX_ALGOS = {
    "WWW": www_steiner_tree,
    "Mehlhorn": mehlhorn_steiner_tree,
    "KMB": kmb_steiner_tree,
    "ours-sequential": sequential_steiner_tree,
}


@pytest.mark.parametrize("dataset", DATASETS)
@pytest.mark.parametrize("algo", list(APPROX_ALGOS))
def test_approximation_solvers(benchmark, seeds_cache, dataset, algo):
    graph = load_dataset(dataset)
    seeds = seeds_cache(dataset, K)
    benchmark.group = f"table6 {dataset} |S|=30"
    result = benchmark.pedantic(
        APPROX_ALGOS[algo], args=(graph, seeds), rounds=2, iterations=1
    )
    benchmark.extra_info["total_distance"] = result.total_distance


@pytest.mark.parametrize("dataset", DATASETS)
def test_ours_distributed(benchmark, seeds_cache, dataset):
    graph = load_dataset(dataset)
    seeds = seeds_cache(dataset, K)
    solver = DistributedSteinerSolver(graph, SolverConfig(n_ranks=16))
    benchmark.group = f"table6 {dataset} |S|=30"
    result = benchmark.pedantic(solver.solve, args=(seeds,), rounds=1, iterations=1)
    benchmark.extra_info["sim_time_s"] = result.sim_time()
    benchmark.extra_info["total_distance"] = result.total_distance


@pytest.mark.parametrize("dataset", ["MCO", "CTS"])
def test_exact_solver(benchmark, seeds_cache, dataset):
    """SCIP-Jack's role at |S|=10 — expected to dwarf the approximations."""
    graph = load_dataset(dataset)
    seeds = seeds_cache(dataset, 10)
    benchmark.group = f"table6 {dataset} exact |S|=10"
    result = benchmark.pedantic(
        exact_steiner_tree, args=(graph, seeds), rounds=1, iterations=1
    )
    benchmark.extra_info["optimal_distance"] = result.total_distance
